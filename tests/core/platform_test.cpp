#include "core/platform.hpp"

#include <gtest/gtest.h>

namespace p2plab::core {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }

TEST(Platform, DeploysVnodesInBlocks) {
  Platform platform(topology::homogeneous_dsl(160),
                    PlatformConfig{.physical_nodes = 16});
  EXPECT_EQ(platform.vnode_count(), 160u);
  EXPECT_EQ(platform.physical_node_count(), 16u);
  EXPECT_EQ(platform.folding_ratio(), 10u);
  EXPECT_EQ(platform.pnode_of_vnode(0), 0u);
  EXPECT_EQ(platform.pnode_of_vnode(9), 0u);
  EXPECT_EQ(platform.pnode_of_vnode(10), 1u);
  EXPECT_EQ(platform.pnode_of_vnode(159), 15u);
  // Every pnode hosts exactly 10 aliases.
  for (std::size_t p = 0; p < 16; ++p) {
    EXPECT_EQ(platform.network().host(p).aliases().size(), 10u);
  }
}

TEST(Platform, TwoRulesPerHostedVnode) {
  // The paper: "Two rules are needed for each hosted virtual node (one for
  // incoming packets, the other one for outgoing packets)."
  Platform platform(topology::homogeneous_dsl(40),
                    PlatformConfig{.physical_nodes = 4});
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(platform.network().host(p).firewall().rule_count(), 20u);
    EXPECT_EQ(platform.network().host(p).firewall().pipe_count(), 20u);
  }
}

TEST(Platform, Figure7RuleCountOnHostOf10_1_3) {
  // The paper's worked example: the physical node hosting 10.1.3.207 needs
  // two rules per hosted vnode plus four inter-group latency rules
  // (10.1.3->10.1.1, 10.1.3->10.1.2 at 100 ms; 10.1->10.2 at 400 ms;
  // 10.1->10.3 at 600 ms).
  auto topo = topology::figure7();
  // One pnode per zone block of 250/250/250/1000/1000 = 2750 nodes; use
  // 11 pnodes -> 250 vnodes each, so pnode 2 hosts exactly 10.1.3.*.
  Platform platform(topo, PlatformConfig{.physical_nodes = 11});
  net::Host& host = platform.network().host(2);
  ASSERT_EQ(host.aliases().size(), 250u);
  EXPECT_EQ(host.aliases().front(), ip("10.1.3.1"));
  // 2*250 vnode rules + 4 group rules.
  EXPECT_EQ(host.firewall().rule_count(), 504u);

  // The group rules impose exactly the paper's latencies.
  const auto to_10_1_1 =
      host.firewall().classify(ip("10.1.3.207"), ip("10.1.1.5"),
                               ipfw::RuleDir::kOut);
  ASSERT_EQ(to_10_1_1.pipes.size(), 2u);  // access pipe + 100 ms pipe
  EXPECT_EQ(host.firewall().pipe(to_10_1_1.pipes[1]).config().delay,
            Duration::ms(100));
  const auto to_10_2 =
      host.firewall().classify(ip("10.1.3.207"), ip("10.2.2.117"),
                               ipfw::RuleDir::kOut);
  ASSERT_EQ(to_10_2.pipes.size(), 2u);
  EXPECT_EQ(host.firewall().pipe(to_10_2.pipes[1]).config().delay,
            Duration::ms(400));
  const auto to_10_3 =
      host.firewall().classify(ip("10.1.3.207"), ip("10.3.0.7"),
                               ipfw::RuleDir::kOut);
  ASSERT_EQ(to_10_3.pipes.size(), 2u);
  EXPECT_EQ(host.firewall().pipe(to_10_3.pipes[1]).config().delay,
            Duration::ms(600));
  // Same-subnet traffic only passes the access pipe on the way out; the
  // peer's downlink pipe applies on the incoming pass (even co-located).
  const auto local_out = host.firewall().classify(
      ip("10.1.3.207"), ip("10.1.3.5"), ipfw::RuleDir::kOut);
  EXPECT_EQ(local_out.pipes.size(), 1u);
  const auto local_in = host.firewall().classify(
      ip("10.1.3.207"), ip("10.1.3.5"), ipfw::RuleDir::kIn);
  EXPECT_EQ(local_in.pipes.size(), 1u);
}

TEST(Platform, PingThroughDslPair) {
  // Two DSL vnodes: RTT = 4 x 30 ms access latency + serialization + eps.
  Platform platform(topology::homogeneous_dsl(2),
                    PlatformConfig{.physical_nodes = 2});
  Duration rtt;
  platform.ping(ip("10.0.0.1"), ip("10.0.0.2"),
                [&](Duration d) { rtt = d; });
  platform.sim().run();
  // 4 x 30 ms access latency + 2 x 4 ms uplink serialization of the 64 B
  // probe at 128 kb/s + downlink/fabric/CPU epsilon.
  EXPECT_NEAR(rtt.to_millis(), 128.7, 2.0);
}

TEST(Platform, Figure7PingMatches853ms) {
  // The paper measures 853 ms between 10.1.3.207 and 10.2.2.117:
  // 20 + 400 + 5 out, 425 back, ~3 ms of firewall/underlying network.
  Platform platform(topology::figure7(),
                    PlatformConfig{.physical_nodes = 11});
  Duration rtt;
  platform.ping(ip("10.1.3.207"), ip("10.2.2.117"),
                [&](Duration d) { rtt = d; });
  platform.sim().run();
  EXPECT_NEAR(rtt.to_millis(), 853.0, 6.0);
}

TEST(Platform, PingRttGrowsLinearlyWithFillerRules) {
  // Figure 6's sweep at the platform level.
  Platform platform(topology::homogeneous_dsl(2),
                    PlatformConfig{.physical_nodes = 2});
  auto measure = [&] {
    Duration rtt;
    platform.ping(ip("192.168.0.1"), ip("192.168.0.2"),
                  [&](Duration d) { rtt = d; });
    platform.sim().run();
    return rtt;
  };
  const Duration base = measure();
  platform.network().host(0).firewall().add_filler_rules(100000, 10000);
  const Duration at_10k = measure();
  platform.network().host(0).firewall().add_filler_rules(200000, 10000);
  const Duration at_20k = measure();
  // Each 10k rules adds ~2 x 0.5 ms (out on the way there, in on the way
  // back, both on host 0).
  EXPECT_NEAR((at_10k - base).to_millis(), 1.0, 0.1);
  EXPECT_NEAR((at_20k - at_10k).to_millis(), 1.0, 0.1);
}

TEST(Platform, ProcessesHaveBindip) {
  Platform platform(topology::homogeneous_dsl(4),
                    PlatformConfig{.physical_nodes = 2});
  for (std::size_t i = 0; i < 4; ++i) {
    const auto bindip = platform.process(i).getenv("BINDIP");
    ASSERT_TRUE(bindip.has_value());
    EXPECT_EQ(*bindip, platform.vnode(i).ip().to_string());
    EXPECT_EQ(platform.api(i).effective_bind_address(),
              platform.vnode(i).ip());
  }
}

TEST(Platform, SingleMachineFoldsEverything) {
  Platform platform(topology::homogeneous_dsl(80),
                    PlatformConfig{.physical_nodes = 1});
  EXPECT_EQ(platform.folding_ratio(), 80u);
  EXPECT_EQ(platform.network().host(0).aliases().size(), 80u);
  EXPECT_EQ(platform.network().host(0).firewall().rule_count(), 160u);
}

TEST(Platform, TotalRulesAccounting) {
  Platform platform(topology::homogeneous_dsl(40),
                    PlatformConfig{.physical_nodes = 4});
  EXPECT_EQ(platform.total_rules(), 80u);
}

TEST(Platform, SocketsWorkAcrossTheDeployment) {
  Platform platform(topology::homogeneous_dsl(4),
                    PlatformConfig{.physical_nodes = 2});
  int echoed = 0;
  auto listener =
      platform.api(0).listen(7000, [&](sockets::StreamSocketPtr s) {
        s->on_message([&echoed, s](sockets::Message&& m) {
          ++echoed;
          s->send(std::move(m));
        });
      });
  int replies = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    platform.api(i).connect(
        platform.vnode(0).ip(), 7000, [&](sockets::StreamSocketPtr s) {
          s->on_message([&replies](sockets::Message&&) { ++replies; });
          sockets::Message m;
          m.type = 1;
          m.size = DataSize::kib(1);
          s->send(m);
        });
  }
  platform.sim().run();
  EXPECT_EQ(echoed, 3);
  EXPECT_EQ(replies, 3);
}

}  // namespace
}  // namespace p2plab::core
