#include "vnode/vnode.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "vnode/interceptor.hpp"

namespace p2plab::vnode {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }

class VnodeTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  net::Network network{sim, Rng{1}};
  net::Host& host = network.add_host("node1", ip("192.168.38.1"));
};

TEST_F(VnodeTest, VirtualNodeRegistersAlias) {
  VirtualNode vn(host, 1, ip("10.0.0.1"));
  EXPECT_EQ(network.host_of(ip("10.0.0.1")), &host);
  EXPECT_EQ(vn.ip(), ip("10.0.0.1"));
  EXPECT_EQ(vn.id(), 1u);
  ASSERT_EQ(host.aliases().size(), 1u);
  EXPECT_EQ(host.aliases()[0], ip("10.0.0.1"));
}

TEST_F(VnodeTest, ProcessGetsBindipEnv) {
  VirtualNode vn(host, 1, ip("10.0.0.1"));
  Process proc(vn);
  const auto bindip = proc.getenv("BINDIP");
  ASSERT_TRUE(bindip.has_value());
  EXPECT_EQ(*bindip, "10.0.0.1");
  EXPECT_FALSE(proc.getenv("OTHER").has_value());
}

TEST_F(VnodeTest, EnvSetUnset) {
  VirtualNode vn(host, 1, ip("10.0.0.1"));
  Process proc(vn);
  proc.set_env("FOO", "bar");
  EXPECT_EQ(*proc.getenv("FOO"), "bar");
  proc.unset_env("FOO");
  EXPECT_FALSE(proc.getenv("FOO").has_value());
}

TEST(SyscallCosts, MicrobenchmarkNumbersEmerge) {
  // The paper's measurement: 10.22 us vanilla, 10.79 us intercepted.
  const SyscallCosts costs;
  EXPECT_NEAR(costs.base_connect_cycle().to_micros(), 10.22, 1e-9);
  EXPECT_NEAR(costs.intercepted_connect_cycle().to_micros(), 10.79, 1e-9);
  EXPECT_NEAR(
      (costs.intercepted_connect_cycle() - costs.base_connect_cycle())
          .to_micros(),
      0.57, 1e-9);
}

class InterceptorTest : public VnodeTest {
 protected:
  Interceptor interceptor;
};

TEST_F(InterceptorTest, BindRewrittenToBindip) {
  VirtualNode vn(host, 1, ip("10.0.0.1"));
  Process proc(vn);
  const auto decision = interceptor.on_bind(proc, ip("0.0.0.0"));
  EXPECT_TRUE(decision.intercepted);
  EXPECT_EQ(decision.address, ip("10.0.0.1"));
  EXPECT_GT(decision.added_cost, Duration::zero());
}

TEST_F(InterceptorTest, ConnectGetsImplicitBind) {
  VirtualNode vn(host, 1, ip("10.0.0.1"));
  Process proc(vn);
  const auto decision = interceptor.on_connect_or_listen(proc, std::nullopt);
  EXPECT_TRUE(decision.intercepted);
  EXPECT_EQ(decision.address, ip("10.0.0.1"));
  // The extra bind() syscall plus the env lookup: the 0.57 us overhead.
  EXPECT_NEAR(decision.added_cost.to_micros(), 0.57, 1e-9);
}

TEST_F(InterceptorTest, PriorBindWinsAndErrorIgnored) {
  // "If another bind() was made before, this one will fail, but we ignore
  // the error in this case." The cost is still paid.
  VirtualNode vn(host, 1, ip("10.0.0.1"));
  Process proc(vn);
  const auto decision =
      interceptor.on_connect_or_listen(proc, ip("10.0.0.99"));
  EXPECT_TRUE(decision.intercepted);
  EXPECT_EQ(decision.address, ip("10.0.0.99"));
  EXPECT_NEAR(decision.added_cost.to_micros(), 0.57, 1e-9);
}

TEST_F(InterceptorTest, StaticBinaryBypassesInterception) {
  // The one failure case the paper reports: statically compiled programs.
  VirtualNode vn(host, 1, ip("10.0.0.1"));
  Process proc(vn, LinkMode::kStatic);
  const auto bind_decision = interceptor.on_bind(proc, ip("0.0.0.0"));
  EXPECT_FALSE(bind_decision.intercepted);
  EXPECT_EQ(bind_decision.address, ip("0.0.0.0"));
  const auto conn_decision =
      interceptor.on_connect_or_listen(proc, std::nullopt);
  EXPECT_FALSE(conn_decision.intercepted);
  // Falls back to the host's primary address: wrong network identity.
  EXPECT_EQ(conn_decision.address, host.admin_ip());
  EXPECT_EQ(conn_decision.added_cost, Duration::zero());
}

TEST_F(InterceptorTest, UnsetBindipBypasses) {
  VirtualNode vn(host, 1, ip("10.0.0.1"));
  Process proc(vn);
  proc.unset_env("BINDIP");
  const auto decision = interceptor.on_connect_or_listen(proc, std::nullopt);
  EXPECT_FALSE(decision.intercepted);
  EXPECT_EQ(decision.address, host.admin_ip());
}

TEST_F(InterceptorTest, MalformedBindipBypasses) {
  VirtualNode vn(host, 1, ip("10.0.0.1"));
  Process proc(vn);
  proc.set_env("BINDIP", "not-an-address");
  const auto decision = interceptor.on_connect_or_listen(proc, std::nullopt);
  EXPECT_FALSE(decision.intercepted);
}

}  // namespace
}  // namespace p2plab::vnode
