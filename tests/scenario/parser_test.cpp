// Scenario-DSL parser tests: golden error messages (with line numbers —
// the DSL's main UX surface), --set override semantics, unit parsing, and
// the shipped-catalog equivalence guarantee: every scenarios/*.scn must
// parse to exactly the spec its C++ catalog twin builds, so `p2plab_run`
// and the bench binaries stay interchangeable.
#include "scenario/parser.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/catalog.hpp"

namespace p2plab::scenario {
namespace {

ScenarioSpec parse_ok(const std::string& text,
                      const std::vector<std::string>& overrides = {}) {
  ParseOptions options;
  options.overrides = overrides;
  ParseResult result = parse_scenario(text, options);
  EXPECT_TRUE(result.spec) << result.error;
  return result.spec ? *result.spec : ScenarioSpec{};
}

std::string parse_error(const std::string& text,
                        const std::vector<std::string>& overrides = {}) {
  ParseOptions options;
  options.overrides = overrides;
  ParseResult result = parse_scenario(text, options);
  EXPECT_FALSE(result.spec) << "expected a parse error";
  return result.error;
}

TEST(ScenarioParser, MinimalSwarmDefaults) {
  const ScenarioSpec spec = parse_ok(
      "scenario tiny\n"
      "[workload]\n"
      "type swarm\n"
      "clients 8\n");
  EXPECT_EQ(spec.name, "tiny");
  EXPECT_EQ(spec.workload, "swarm");
  EXPECT_EQ(spec.swarm.clients, 8u);
  EXPECT_EQ(spec.swarm.seeders, 4u);  // SwarmConfig defaults survive
  EXPECT_EQ(spec.swarm.file_size.count_bytes(), DataSize::mib(16).count_bytes());
  EXPECT_EQ(spec.vnodes(), 13u);  // tracker + 4 seeders + 8 clients
  EXPECT_EQ(spec.engine.shards, 0u);
  EXPECT_TRUE(spec.faults.empty());
  EXPECT_TRUE(spec.declared_outputs().empty());
}

TEST(ScenarioParser, CommentsBlankLinesAndQuotedValues) {
  const ScenarioSpec spec = parse_ok(
      "# a comment\n"
      "scenario quoted\n"
      "\n"
      "[workload]\n"
      "type swarm            # trailing comment\n"
      "clients 4\n"
      "[outputs]\n"
      "completions done\n"
      "completions_note \"a note, with spaces # not a comment\"\n");
  EXPECT_EQ(spec.outputs.completions, "done");
  EXPECT_EQ(spec.outputs.completions_note,
            "a note, with spaces # not a comment");
}

TEST(ScenarioParser, SizesAndDurations) {
  const ScenarioSpec spec = parse_ok(
      "scenario units\n"
      "[workload]\n"
      "type swarm\n"
      "clients 4\n"
      "file_size 4M\n"
      "piece_length 64k\n"
      "start_interval 250ms\n"
      "max_duration 8000\n");
  EXPECT_EQ(spec.swarm.file_size.count_bytes(), DataSize::mib(4).count_bytes());
  EXPECT_EQ(spec.swarm.piece_length.count_bytes(),
            DataSize::kib(64).count_bytes());
  EXPECT_EQ(spec.swarm.start_interval, Duration::millis(250));
  EXPECT_EQ(spec.swarm.max_duration, Duration::sec(8000));  // bare = seconds
}

TEST(ScenarioParser, ParseDataSizeUnits) {
  EXPECT_EQ(parse_data_size("100")->count_bytes(), 100u);
  EXPECT_EQ(parse_data_size("256k")->count_bytes(), 256u * 1024);
  EXPECT_EQ(parse_data_size("256K")->count_bytes(), 256u * 1024);
  EXPECT_EQ(parse_data_size("16M")->count_bytes(), 16u * 1024 * 1024);
  EXPECT_EQ(parse_data_size("1G")->count_bytes(), 1024u * 1024 * 1024);
  EXPECT_FALSE(parse_data_size("0"));    // sizes must be positive
  EXPECT_FALSE(parse_data_size(""));
  EXPECT_FALSE(parse_data_size("12T"));  // unknown suffix
  EXPECT_FALSE(parse_data_size("bogus"));
}

// -- validate workload (the accuracy harness) -----------------------------

TEST(ScenarioParserValidate, AllKeysParse) {
  const ScenarioSpec spec = parse_ok(
      "scenario acc\n"
      "[workload]\n"
      "type validate\n"
      "nodes 6\n"
      "flows 3\n"
      "transfer 4M\n"
      "message 32k\n"
      "loss_datagrams 5000\n"
      "ge_p_good_bad 0.05\n"
      "ge_p_bad_good 0.5\n"
      "ge_loss_bad 0.8\n"
      "goodput_tolerance 0.2\n"
      "rtt_tolerance 0.15\n"
      "loss_tolerance 0.3\n"
      "jain_min 0.9\n"
      "[engine]\n"
      "transport tcp\n"
      "[outputs]\n"
      "accuracy_json ACC\n");
  EXPECT_EQ(spec.workload, "validate");
  EXPECT_EQ(spec.validate.nodes, 6u);
  EXPECT_EQ(spec.validate.flows, 3u);
  EXPECT_EQ(spec.validate.transfer.count_bytes(),
            DataSize::mib(4).count_bytes());
  EXPECT_EQ(spec.validate.message.count_bytes(),
            DataSize::kib(32).count_bytes());
  EXPECT_EQ(spec.validate.loss_datagrams, 5000u);
  EXPECT_DOUBLE_EQ(spec.validate.ge_p_good_bad, 0.05);
  EXPECT_DOUBLE_EQ(spec.validate.ge_p_bad_good, 0.5);
  EXPECT_DOUBLE_EQ(spec.validate.ge_loss_bad, 0.8);
  EXPECT_DOUBLE_EQ(spec.validate.goodput_tolerance, 0.2);
  EXPECT_DOUBLE_EQ(spec.validate.rtt_tolerance, 0.15);
  EXPECT_DOUBLE_EQ(spec.validate.loss_tolerance, 0.3);
  EXPECT_DOUBLE_EQ(spec.validate.jain_min, 0.9);
  EXPECT_EQ(spec.engine.transport, TransportModel::kTcp);
  EXPECT_EQ(spec.vnodes(), 6u);
  const std::vector<std::string> files = spec.declared_outputs();
  EXPECT_NE(std::find(files.begin(), files.end(), "ACC.json"), files.end());
}

TEST(ScenarioParserValidate, DefaultsAndFlowTransport) {
  const ScenarioSpec spec =
      parse_ok("scenario acc\n[workload]\ntype validate\n");
  EXPECT_EQ(spec.validate.nodes, 8u);
  EXPECT_EQ(spec.validate.flows, 4u);
  EXPECT_DOUBLE_EQ(spec.validate.goodput_tolerance, 0.12);
  EXPECT_DOUBLE_EQ(spec.validate.jain_min, 0.95);
  EXPECT_EQ(spec.engine.transport, TransportModel::kFlow);
  EXPECT_TRUE(spec.validate.expect_bandwidth.is_unlimited());
}

TEST(ScenarioParserValidate, ExpectBandwidthOverrideViaSet) {
  // The CI control case: a wrong bandwidth expectation injected by --set
  // must reach the spec so the harness can fail against it.
  const ScenarioSpec spec =
      parse_ok("scenario acc\n[workload]\ntype validate\n",
               {"workload.expect_bandwidth=8M"});
  EXPECT_FALSE(spec.validate.expect_bandwidth.is_unlimited());
  EXPECT_EQ(spec.validate.expect_bandwidth.count_bps(),
            Bandwidth::mbps(8).count_bps());
}

TEST(ScenarioParserValidate, NodesFloor) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type validate\n"
                        "nodes 2\n"),
            "line 4: validate needs nodes >= 3");
}

TEST(ScenarioParserValidate, FlowsNeedASinkBesidesTheSources) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type validate\n"
                        "nodes 4\n"
                        "flows 4\n"),
            "line 5: validate needs nodes > flows (a fairness sink besides "
            "the sources)");
}

TEST(ScenarioParserValidate, UnknownTransport) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type validate\n"
                        "[engine]\n"
                        "transport quic\n"),
            "line 5: unknown transport 'quic' (tcp|flow)");
}

TEST(ScenarioParserValidate, ValidateKeyInSwarmWorkload) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type swarm\n"
                        "jain_min 0.9\n"),
            "line 4: key 'jain_min' is not valid for workload type swarm");
}

TEST(ScenarioParserGossip, GossipKeysParse) {
  const ScenarioSpec spec = parse_ok(
      "scenario g\n"
      "[workload]\n"
      "type gossip\n"
      "nodes 16\n"
      "period 500ms\n"
      "ping_timeout 150ms\n"
      "suspect_timeout 3\n"
      "indirect 2\n"
      "piggyback 6\n"
      "join_interval 100ms\n"
      "[engine]\n"
      "stop time\n"
      "run_for 60\n");
  EXPECT_EQ(spec.workload, "gossip");
  EXPECT_EQ(spec.gossip.nodes, 16u);
  EXPECT_EQ(spec.gossip.period, Duration::ms(500));
  EXPECT_EQ(spec.gossip.ping_timeout, Duration::ms(150));
  EXPECT_EQ(spec.gossip.suspect_timeout, Duration::sec(3));
  EXPECT_EQ(spec.gossip.indirect_k, 2u);
  EXPECT_EQ(spec.gossip.piggyback, 6u);
  EXPECT_EQ(spec.gossip.join_interval, Duration::ms(100));
  EXPECT_EQ(spec.vnodes(), 16u);
  EXPECT_EQ(spec.engine.stop, StopMode::kTime);
}

TEST(ScenarioParserGossip, UnknownWorkloadTypeEnumeratesRegistry) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type chord\n"),
            "line 3: unknown workload type 'chord' "
            "(expected gossip|ping_sweep|swarm|validate)");
}

TEST(ScenarioParserGossip, GossipKeyInSwarmWorkload) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type swarm\n"
                        "suspect_timeout 3\n"),
            "line 4: key 'suspect_timeout' is not valid for workload type "
            "swarm");
}

TEST(ScenarioParserGossip, SwarmKeyInGossipWorkload) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type gossip\n"
                        "clients 8\n"),
            "line 4: key 'clients' is not valid for workload type gossip");
}

TEST(ScenarioParserGossip, SwarmOutputInGossipWorkload) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type gossip\n"
                        "[engine]\n"
                        "stop time\n"
                        "run_for 60\n"
                        "[outputs]\n"
                        "completions done\n"),
            "line 8: key 'completions' is not valid for workload type "
            "gossip");
}

TEST(ScenarioParserGossip, GossipRequiresStopTime) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type gossip\n"
                        "[engine]\n"
                        "stop all_complete\n"),
            "line 5: gossip requires stop=time (membership has no "
            "completion; run_for bounds the experiment)");
}

TEST(ScenarioParserGossip, GossipDefaultStopRejected) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type gossip\n"),
            "[engine]: gossip requires stop=time (membership has no "
            "completion; run_for bounds the experiment)");
}

TEST(ScenarioParserGossip, SetOverrideBadDuration) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type gossip\n"
                        "[engine]\n"
                        "stop time\n"
                        "run_for 60\n",
                        {"workload.suspect_timeout=soon"}),
            "--set workload.suspect_timeout=soon: bad duration 'soon' for "
            "suspect_timeout");
}

TEST(ScenarioParserGossip, SetOverrideAppliesToGossip) {
  const ScenarioSpec spec = parse_ok(
      "scenario g\n"
      "[workload]\n"
      "type gossip\n"
      "nodes 32\n"
      "[engine]\n"
      "stop time\n"
      "run_for 60\n",
      {"workload.nodes=12", "workload.indirect=5"});
  EXPECT_EQ(spec.gossip.nodes, 12u);
  EXPECT_EQ(spec.gossip.indirect_k, 5u);
}

// -- golden errors --------------------------------------------------------

TEST(ScenarioParserErrors, SectionBeforeScenarioHeader) {
  EXPECT_EQ(parse_error("[workload]\ntype swarm\n"),
            "line 1: expected 'scenario <name>' before any section");
}

TEST(ScenarioParserErrors, UnknownSection) {
  EXPECT_EQ(parse_error("scenario x\n[warp]\n"),
            "line 2: unknown section [warp]");
}

TEST(ScenarioParserErrors, DuplicateSection) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\ntype swarm\n"
                        "[engine]\n"
                        "[workload]\n"),
            "line 5: duplicate section [workload]");
}

TEST(ScenarioParserErrors, UnknownKeyWithLineNumber) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type swarm\n"
                        "clientz 5\n"),
            "line 4: unknown key 'clientz' in [workload]");
}

TEST(ScenarioParserErrors, DuplicateKey) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type swarm\n"
                        "clients 5\n"
                        "clients 6\n"),
            "line 5: duplicate key 'clients' in [workload]");
}

TEST(ScenarioParserErrors, BadCountKeepsSourceLine) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type swarm\n"
                        "clients never\n"),
            "line 4: bad count 'never' for clients");
}

TEST(ScenarioParserErrors, BadTopologyIncludePath) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type swarm\n"
                        "[topology]\n"
                        "include no/such/file.topo\n"),
            "line 5: include 'no/such/file.topo': cannot read file");
}

TEST(ScenarioParserErrors, ConflictingTopologySources) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type swarm\n"
                        "[topology]\n"
                        "auto\n"
                        "node n0 10.0.0.1\n"),
            "line 5: [topology] cannot mix 'auto' with other topology "
            "sources");
}

TEST(ScenarioParserErrors, ConflictingFaultSources) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type swarm\n"
                        "[faults]\n"
                        "include plan.fault\n"
                        "linkdown node=5 at=300 for=20\n"),
            "line 5: [faults] cannot mix 'include' with inline directives");
}

TEST(ScenarioParserErrors, ChurnNeedsWindow) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type swarm\n"
                        "[faults]\n"
                        "churn fraction=0.3\n"),
            "line 5: churn needs window=START..END");
}

TEST(ScenarioParserErrors, StopTimeRequiresRunFor) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type swarm\n"
                        "[engine]\n"
                        "stop time\n"),
            "line 5: stop=time requires run_for");
}

TEST(ScenarioParserErrors, FoldAndPhysicalNodesConflict) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type swarm\n"
                        "[engine]\n"
                        "physical_nodes 6\n"
                        "fold 32\n"),
            "line 6: fold and physical_nodes are mutually exclusive");
}

TEST(ScenarioParserErrors, PingKeyInSwarmWorkload) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type swarm\n"
                        "rules_max 1000\n"),
            "line 4: key 'rules_max' is not valid for workload type swarm");
}

TEST(ScenarioParserErrors, SwarmOutputInPingWorkload) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type ping_sweep\n"
                        "[outputs]\n"
                        "completions done\n"),
            "line 5: key 'completions' is not valid for workload type "
            "ping_sweep");
}

TEST(ScenarioParserErrors, FaultsRequireSwarm) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type ping_sweep\n"
                        "[faults]\n"
                        "tracker_outage at=100 for=10\n"),
            "line 5: [faults] requires workload type gossip or swarm");
}

TEST(ScenarioParserErrors, UnterminatedQuote) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type swarm\n"
                        "[outputs]\n"
                        "completions_note \"oops\n"),
            "line 5: unterminated quote");
}

// -- profiling keys -------------------------------------------------------

TEST(ScenarioParserProfile, ProfileKeyAndPinParse) {
  const ScenarioSpec spec = parse_ok(
      "scenario x\n"
      "[workload]\n"
      "type swarm\n"
      "[engine]\n"
      "profile on\n"
      "pin off\n");
  EXPECT_TRUE(spec.engine.profile);
  ASSERT_TRUE(spec.engine.pin_workers.has_value());
  EXPECT_FALSE(*spec.engine.pin_workers);
  EXPECT_EQ(spec.resolved_profile_trace(), "profile.json");
}

TEST(ScenarioParserProfile, OffByDefaultAndUndeclared) {
  const ScenarioSpec spec =
      parse_ok("scenario x\n[workload]\ntype swarm\n");
  EXPECT_FALSE(spec.engine.profile);
  EXPECT_FALSE(spec.engine.pin_workers.has_value());
  EXPECT_EQ(spec.resolved_profile_trace(), "");
  for (const std::string& file : spec.declared_outputs()) {
    EXPECT_EQ(file.find("profile"), std::string::npos) << file;
  }
}

TEST(ScenarioParserProfile, ProfileTraceOutputImpliesProfiling) {
  const ScenarioSpec spec = parse_ok(
      "scenario x\n"
      "[workload]\n"
      "type swarm\n"
      "[outputs]\n"
      "profile_trace fig_profile.json\n");
  EXPECT_TRUE(spec.engine.profile);
  EXPECT_EQ(spec.resolved_profile_trace(), "fig_profile.json");
  const std::vector<std::string> files = spec.declared_outputs();
  EXPECT_NE(std::find(files.begin(), files.end(), "fig_profile.json"),
            files.end());
}

TEST(ScenarioParserProfile, BadProfileValue) {
  EXPECT_EQ(parse_error("scenario x\n"
                        "[workload]\n"
                        "type swarm\n"
                        "[engine]\n"
                        "profile maybe\n"),
            "line 5: bad value 'maybe' for profile (expected on|off)");
}

// -- --set overrides ------------------------------------------------------

TEST(ScenarioParserOverrides, SetRewritesValue) {
  const ScenarioSpec spec = parse_ok(
      "scenario x\n[workload]\ntype swarm\nclients 160\n",
      {"workload.clients=8", "engine.shards=2"});
  EXPECT_EQ(spec.swarm.clients, 8u);
  EXPECT_EQ(spec.engine.shards, 2u);
}

TEST(ScenarioParserOverrides, MalformedSet) {
  EXPECT_EQ(parse_error("scenario x\n[workload]\ntype swarm\n",
                        {"workload.clients"}),
            "--set workload.clients: expected section.key=value");
}

TEST(ScenarioParserOverrides, UnknownSectionInSet) {
  EXPECT_EQ(parse_error("scenario x\n[workload]\ntype swarm\n",
                        {"warp.speed=9"}),
            "--set warp.speed=9: unknown section 'warp'");
}

TEST(ScenarioParserOverrides, UnknownKeyInSetKeepsSetSource) {
  EXPECT_EQ(parse_error("scenario x\n[workload]\ntype swarm\n",
                        {"workload.clientz=5"}),
            "--set workload.clientz=5: unknown key 'clientz' in [workload]");
}

TEST(ScenarioParserOverrides, BadValueInSetKeepsSetSource) {
  EXPECT_EQ(parse_error("scenario x\n[workload]\ntype swarm\n",
                        {"workload.clients=lots"}),
            "--set workload.clients=lots: bad count 'lots' for clients");
}

// -- shipped .scn <-> catalog equivalence ---------------------------------

void expect_same_plan(const fault::FaultPlan& a, const fault::FaultPlan& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const fault::FaultSpec& x = a.specs()[i];
    const fault::FaultSpec& y = b.specs()[i];
    EXPECT_EQ(x.kind, y.kind) << "fault " << i;
    EXPECT_EQ(x.node, y.node) << "fault " << i;
    EXPECT_EQ(x.at, y.at) << "fault " << i;
    EXPECT_EQ(x.duration, y.duration) << "fault " << i;
    EXPECT_EQ(x.rejoin, y.rejoin) << "fault " << i;
    EXPECT_EQ(x.extra_latency, y.extra_latency) << "fault " << i;
  }
}

void expect_equivalent(const ScenarioSpec& parsed, const ScenarioSpec& built) {
  EXPECT_EQ(parsed.name, built.name);
  EXPECT_EQ(parsed.workload, built.workload);
  EXPECT_EQ(parsed.swarm.clients, built.swarm.clients);
  EXPECT_EQ(parsed.swarm.seeders, built.swarm.seeders);
  EXPECT_EQ(parsed.swarm.file_size.count_bytes(),
            built.swarm.file_size.count_bytes());
  EXPECT_EQ(parsed.swarm.piece_length.count_bytes(),
            built.swarm.piece_length.count_bytes());
  EXPECT_EQ(parsed.swarm.start_interval, built.swarm.start_interval);
  EXPECT_EQ(parsed.swarm.content_seed, built.swarm.content_seed);
  EXPECT_EQ(parsed.swarm.max_duration, built.swarm.max_duration);
  EXPECT_EQ(parsed.ping.nodes, built.ping.nodes);
  EXPECT_EQ(parsed.ping.rules_max, built.ping.rules_max);
  EXPECT_EQ(parsed.ping.rules_step, built.ping.rules_step);
  EXPECT_EQ(parsed.ping.probes, built.ping.probes);
  EXPECT_EQ(parsed.validate.nodes, built.validate.nodes);
  EXPECT_EQ(parsed.validate.flows, built.validate.flows);
  EXPECT_EQ(parsed.validate.transfer.count_bytes(),
            built.validate.transfer.count_bytes());
  EXPECT_EQ(parsed.validate.message.count_bytes(),
            built.validate.message.count_bytes());
  EXPECT_EQ(parsed.validate.loss_datagrams, built.validate.loss_datagrams);
  EXPECT_EQ(parsed.validate.ge_p_good_bad, built.validate.ge_p_good_bad);
  EXPECT_EQ(parsed.validate.ge_p_bad_good, built.validate.ge_p_bad_good);
  EXPECT_EQ(parsed.validate.ge_loss_bad, built.validate.ge_loss_bad);
  EXPECT_EQ(parsed.validate.goodput_tolerance,
            built.validate.goodput_tolerance);
  EXPECT_EQ(parsed.validate.rtt_tolerance, built.validate.rtt_tolerance);
  EXPECT_EQ(parsed.validate.loss_tolerance, built.validate.loss_tolerance);
  EXPECT_EQ(parsed.validate.jain_min, built.validate.jain_min);
  EXPECT_EQ(parsed.validate.expect_bandwidth, built.validate.expect_bandwidth);
  EXPECT_EQ(parsed.gossip.nodes, built.gossip.nodes);
  EXPECT_EQ(parsed.gossip.period, built.gossip.period);
  EXPECT_EQ(parsed.gossip.ping_timeout, built.gossip.ping_timeout);
  EXPECT_EQ(parsed.gossip.suspect_timeout, built.gossip.suspect_timeout);
  EXPECT_EQ(parsed.gossip.indirect_k, built.gossip.indirect_k);
  EXPECT_EQ(parsed.gossip.piggyback, built.gossip.piggyback);
  EXPECT_EQ(parsed.gossip.join_interval, built.gossip.join_interval);
  EXPECT_EQ(parsed.engine.transport, built.engine.transport);
  EXPECT_EQ(parsed.engine.shards, built.engine.shards);
  EXPECT_EQ(parsed.engine.physical_nodes, built.engine.physical_nodes);
  EXPECT_EQ(parsed.engine.fold, built.engine.fold);
  EXPECT_EQ(parsed.engine.seed, built.engine.seed);
  EXPECT_EQ(parsed.engine.stop, built.engine.stop);
  EXPECT_EQ(parsed.engine.check_invariants, built.engine.check_invariants);
  EXPECT_EQ(parsed.engine.trace, built.engine.trace);
  EXPECT_EQ(parsed.engine.profile, built.engine.profile);
  EXPECT_EQ(parsed.engine.pin_workers, built.engine.pin_workers);
  EXPECT_EQ(parsed.resolved_physical_nodes(), built.resolved_physical_nodes());
  EXPECT_EQ(parsed.faults.churn.enabled, built.faults.churn.enabled);
  EXPECT_EQ(parsed.faults.churn.fraction, built.faults.churn.fraction);
  EXPECT_EQ(parsed.faults.churn.window_start, built.faults.churn.window_start);
  EXPECT_EQ(parsed.faults.churn.window_end, built.faults.churn.window_end);
  EXPECT_EQ(parsed.faults.churn.rejoin_fraction,
            built.faults.churn.rejoin_fraction);
  EXPECT_EQ(parsed.faults.churn.rejoin_min, built.faults.churn.rejoin_min);
  EXPECT_EQ(parsed.faults.churn.rejoin_max, built.faults.churn.rejoin_max);
  EXPECT_EQ(parsed.faults.churn.rng_stream, built.faults.churn.rng_stream);
  expect_same_plan(parsed.faults.plan, built.faults.plan);
  EXPECT_EQ(parsed.declared_outputs(), built.declared_outputs());
  EXPECT_EQ(parsed.outputs.completions_note, built.outputs.completions_note);
  EXPECT_EQ(parsed.outputs.completion_curve_note,
            built.outputs.completion_curve_note);
  EXPECT_EQ(parsed.outputs.csv_note, built.outputs.csv_note);
  EXPECT_EQ(parsed.outputs.sampled_every, built.outputs.sampled_every);
  EXPECT_EQ(parsed.outputs.grid, built.outputs.grid);
  EXPECT_EQ(parsed.outputs.report, built.outputs.report);
}

ScenarioSpec parse_shipped(const char* file) {
  const std::string path =
      std::string(P2PLAB_SOURCE_DIR) + "/scenarios/" + file;
  ParseResult result = parse_scenario_file(path, {});
  EXPECT_TRUE(result.spec) << path << ": " << result.error;
  return result.spec ? *result.spec : ScenarioSpec{};
}

TEST(ShippedScenarios, Fig6MatchesCatalog) {
  expect_equivalent(parse_shipped("fig6.scn"), catalog::fig6());
}

TEST(ShippedScenarios, Fig8MatchesCatalog) {
  expect_equivalent(parse_shipped("fig8.scn"), catalog::fig8());
}

TEST(ShippedScenarios, Fig10MatchesCatalog) {
  expect_equivalent(parse_shipped("fig10.scn"), catalog::fig10());
}

TEST(ShippedScenarios, ChurnMatchesCatalog) {
  expect_equivalent(parse_shipped("churn.scn"), catalog::churn());
}

TEST(ShippedScenarios, FlashCrowdParses) {
  const ScenarioSpec spec = parse_shipped("flashcrowd.scn");
  expect_equivalent(spec, catalog::flash_crowd());
}

TEST(ShippedScenarios, GossipMatchesCatalog) {
  expect_equivalent(parse_shipped("gossip.scn"), catalog::gossip());
}

TEST(ShippedScenarios, AccuracyMatchesCatalog) {
  const ScenarioSpec parsed = parse_shipped("accuracy.scn");
  const ScenarioSpec built = catalog::accuracy();
  expect_equivalent(parsed, built);
  // Both carry an inline topology; the accuracy harness derives its
  // expectations from it, so zone-level drift would silently change what
  // the invariants assert.
  ASSERT_EQ(parsed.topology.source, TopologySource::kInline);
  ASSERT_EQ(built.topology.source, TopologySource::kInline);
  ASSERT_TRUE(parsed.topology.built.has_value());
  ASSERT_TRUE(built.topology.built.has_value());
  const topology::Topology& pt = *parsed.topology.built;
  const topology::Topology& ct = *built.topology.built;
  ASSERT_EQ(pt.zones().size(), ct.zones().size());
  for (std::size_t z = 0; z < pt.zones().size(); ++z) {
    const topology::Zone& a = pt.zones()[z];
    const topology::Zone& b = ct.zones()[z];
    EXPECT_EQ(a.name, b.name) << "zone " << z;
    EXPECT_EQ(a.subnet.to_string(), b.subnet.to_string()) << "zone " << z;
    EXPECT_EQ(a.node_count, b.node_count) << "zone " << z;
    EXPECT_EQ(a.link.down, b.link.down) << "zone " << z;
    EXPECT_EQ(a.link.up, b.link.up) << "zone " << z;
    EXPECT_EQ(a.link.latency, b.link.latency) << "zone " << z;
    EXPECT_EQ(a.link.loss_rate, b.link.loss_rate) << "zone " << z;
  }
  ASSERT_EQ(pt.latencies().size(), ct.latencies().size());
  for (std::size_t i = 0; i < pt.latencies().size(); ++i) {
    EXPECT_EQ(pt.latencies()[i].a, ct.latencies()[i].a) << "latency " << i;
    EXPECT_EQ(pt.latencies()[i].b, ct.latencies()[i].b) << "latency " << i;
    EXPECT_EQ(pt.latencies()[i].latency, ct.latencies()[i].latency)
        << "latency " << i;
  }
}

}  // namespace
}  // namespace p2plab::scenario
