// End-to-end ExperimentRunner tests on deliberately tiny swarms: a spec
// goes in, the experiment runs to its stop condition, and the run is
// deterministic — the same spec produces the same completion times whether
// it came from C++ or from DSL text, and on the classic or the sharded
// engine.
#include "scenario/runner.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/parser.hpp"

namespace p2plab::scenario {
namespace {

ScenarioSpec tiny_spec() {
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.swarm.clients = 6;
  spec.swarm.seeders = 2;
  spec.swarm.file_size = DataSize::mib(1);
  spec.swarm.start_interval = Duration::sec(1);
  return spec;
}

std::vector<double> completion_times(ExperimentRunner& runner) {
  return runner.swarm().completion_times_sec();
}

TEST(ExperimentRunner, TinySwarmRunsToCompletion) {
  ExperimentRunner runner(tiny_spec());
  EXPECT_EQ(runner.run(), 0);
  EXPECT_TRUE(runner.swarm().all_complete());
  EXPECT_GT(runner.median_completion_sec(), 0.0);
}

TEST(ExperimentRunner, DslAndCatalogSpecsProduceIdenticalRuns) {
  ExperimentRunner from_cpp(tiny_spec());
  ASSERT_EQ(from_cpp.run(), 0);

  ParseResult parsed = parse_scenario(
      "scenario tiny\n"
      "[workload]\n"
      "type swarm\n"
      "clients 6\n"
      "seeders 2\n"
      "file_size 1M\n"
      "start_interval 1\n",
      {});
  ASSERT_TRUE(parsed.spec) << parsed.error;
  ExperimentRunner from_dsl(std::move(*parsed.spec));
  ASSERT_EQ(from_dsl.run(), 0);

  EXPECT_EQ(completion_times(from_cpp), completion_times(from_dsl));
}

TEST(ExperimentRunner, ShardedRunMatchesClassic) {
  ExperimentRunner classic(tiny_spec());
  ASSERT_EQ(classic.run(), 0);

  ScenarioSpec sharded_spec = tiny_spec();
  sharded_spec.engine.shards = 2;
  ExperimentRunner sharded(std::move(sharded_spec));
  ASSERT_EQ(sharded.run(), 0);

  EXPECT_EQ(completion_times(classic), completion_times(sharded));
}

TEST(ExperimentRunner, StopTimeEndsEarly) {
  ScenarioSpec spec = tiny_spec();
  spec.engine.stop = StopMode::kTime;
  spec.engine.run_for = Duration::sec(5);
  ExperimentRunner runner(std::move(spec));
  EXPECT_EQ(runner.run(), 0);
  EXPECT_FALSE(runner.swarm().all_complete());
  EXPECT_LE(runner.platform().sim().now().to_seconds(), 6.0);
}

TEST(ExperimentRunner, ChurnDirectiveInjectsAndRecovers) {
  ScenarioSpec spec = tiny_spec();
  spec.swarm.clients = 8;
  spec.faults.churn.enabled = true;
  spec.faults.churn.fraction = 0.25;
  spec.faults.churn.window_start = Duration::sec(5);
  spec.faults.churn.window_end = Duration::sec(30);
  spec.faults.churn.rejoin_fraction = 1.0;  // everyone comes back
  spec.faults.churn.rejoin_min = Duration::sec(5);
  spec.faults.churn.rejoin_max = Duration::sec(10);
  spec.engine.stop = StopMode::kSurvivorsComplete;
  spec.engine.check_invariants = true;
  ExperimentRunner runner(std::move(spec));
  EXPECT_EQ(runner.run(), 0);  // invariant checks pass
}

TEST(ExperimentRunner, PingSweepProducesRttCurve) {
  ScenarioSpec spec;
  spec.name = "mini_ping";
  spec.workload = "ping_sweep";
  spec.ping.rules_max = 1000;
  spec.ping.rules_step = 500;
  spec.ping.probes = 2;
  ExperimentRunner runner(std::move(spec));
  EXPECT_EQ(runner.run(), 0);
}

}  // namespace
}  // namespace p2plab::scenario
