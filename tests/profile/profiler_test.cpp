// BSP profiler tests: ring overflow semantics, rollup math, Perfetto
// trace-event validity (line-parsed: the sink promises one event per
// line), registry folding, and the end-to-end recording paths — engine
// workers at K=2 and the classic single-threaded chunk loop.
#include "profile/profiler.hpp"

#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bittorrent/swarm.hpp"
#include "core/platform.hpp"
#include "metrics/registry.hpp"
#include "topology/topology.hpp"

namespace p2plab::profile {
namespace {

PhaseSample sample_at(std::uint64_t start_ns, std::uint64_t dur_ns,
                      Phase phase, std::uint64_t events = 0,
                      std::uint64_t queue = 0) {
  PhaseSample s;
  s.start_ns = start_ns;
  s.dur_ns = dur_ns;
  s.phase = phase;
  s.events = events;
  s.queue_depth = queue;
  return s;
}

TEST(SampleRing, OverflowDropsOldestWithoutBlocking) {
  SampleRing ring(4);
  for (std::uint64_t i = 0; i < 7; ++i) {
    ring.push(sample_at(i, 1, Phase::kExecute, /*events=*/i));
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total(), 7u);
  EXPECT_EQ(ring.dropped(), 3u);
  // Survivors are the newest four, oldest first.
  const std::vector<PhaseSample> kept = ring.samples();
  ASSERT_EQ(kept.size(), 4u);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].start_ns, i + 3);
  }
}

TEST(SampleRing, NoDropsBelowCapacity) {
  SampleRing ring(8);
  ring.push(sample_at(10, 5, Phase::kBarrierWait));
  ring.push(sample_at(20, 5, Phase::kExecute));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<PhaseSample> kept = ring.samples();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].start_ns, 10u);
  EXPECT_EQ(kept[1].phase, Phase::kExecute);
}

TEST(ProfilerRollup, SharesAndImbalanceFromHandBuiltSamples) {
  // Shard 0: 60 ms execute + 40 ms wait, 300 events.
  // Shard 1: 80 ms execute + 20 ms wait, 100 events.
  // Coordinator: 10 ms merge. Span = 0..100 ms.
  Profiler prof(2, /*ring_capacity=*/16);
  prof.shard_ring(0).push(
      sample_at(0, 60'000'000, Phase::kExecute, 300, /*queue=*/7));
  prof.shard_ring(0).push(
      sample_at(60'000'000, 40'000'000, Phase::kBarrierWait));
  prof.shard_ring(1).push(sample_at(0, 80'000'000, Phase::kExecute, 100));
  prof.shard_ring(1).push(
      sample_at(80'000'000, 20'000'000, Phase::kBarrierWait));
  prof.coordinator_ring().push(
      sample_at(40'000'000, 10'000'000, Phase::kMerge));

  const Rollup roll = prof.rollup();
  ASSERT_EQ(roll.shards.size(), 2u);
  EXPECT_NEAR(roll.span_s, 0.1, 1e-9);
  EXPECT_NEAR(roll.shards[0].utilization_pct, 60.0, 1e-6);
  EXPECT_NEAR(roll.shards[1].utilization_pct, 80.0, 1e-6);
  EXPECT_EQ(roll.shards[0].events, 300u);
  EXPECT_EQ(roll.shards[0].max_queue_depth, 7u);
  // Σ wait / Σ (execute + wait + compact) = 60 ms / 200 ms.
  EXPECT_NEAR(roll.barrier_wait_share, 0.3, 1e-9);
  EXPECT_NEAR(roll.merge_share, 0.1, 1e-9);
  // max/mean events = 300 / 200.
  EXPECT_NEAR(roll.imbalance_ratio, 1.5, 1e-9);
  EXPECT_EQ(roll.ring_dropped, 0u);
}

TEST(ProfilerRollup, EmptyProfilerIsAllZerosWithUnitImbalance) {
  Profiler prof(3);
  const Rollup roll = prof.rollup();
  EXPECT_EQ(roll.span_s, 0.0);
  EXPECT_EQ(roll.barrier_wait_share, 0.0);
  EXPECT_EQ(roll.imbalance_ratio, 1.0);  // no events: balanced, not 0/0
}

TEST(ProfilerRollup, RingDroppedSumsAllRings) {
  Profiler prof(1, /*ring_capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    prof.shard_ring(0).push(sample_at(static_cast<std::uint64_t>(i), 1,
                                      Phase::kExecute));
  }
  EXPECT_EQ(prof.rollup().ring_dropped, 3u);
}

TEST(ProfilerRegistry, FoldInstallsProfileGaugesIdempotently) {
  Profiler prof(2, 16);
  prof.shard_ring(0).push(sample_at(0, 50'000'000, Phase::kExecute, 10));
  metrics::Registry reg;
  prof.fold_into(reg);
  prof.fold_into(reg);  // second fold must not double anything
  EXPECT_NEAR(reg.value("profile.shard0.utilization_pct"), 100.0, 1e-6);
  EXPECT_EQ(reg.value("profile.shard1.utilization_pct"), 0.0);
  EXPECT_EQ(reg.value("profile.barrier_wait.share"), 0.0);
  EXPECT_EQ(reg.value("profile.merge.share"), 0.0);
  EXPECT_EQ(reg.value("profile.imbalance.ratio"), 10.0 / 5.0);
  EXPECT_EQ(reg.value("profile.ring.dropped"), 0.0);
}

// --- Perfetto sink ---------------------------------------------------------

// Minimal field scraping for the line-oriented trace format; the sink
// promises one JSON event object per line.
bool field_u64(const std::string& line, const std::string& key,
               std::uint64_t* out) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

bool field_f64(const std::string& line, const std::string& key,
               double* out) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

TEST(ProfilerPerfetto, TimelineIsWellFormedPerTrack) {
  Profiler prof(2, 64);
  prof.shard_ring(0).push(sample_at(1000, 500, Phase::kExecute, 5, 2));
  prof.shard_ring(0).push(sample_at(1500, 250, Phase::kBarrierWait));
  prof.shard_ring(1).push(sample_at(900, 800, Phase::kExecute, 9));
  prof.coordinator_ring().push(sample_at(1750, 100, Phase::kMerge));

  const std::string json = prof.perfetto_json();
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);

  std::istringstream lines(json);
  std::string line;
  std::set<std::uint64_t> meta_tids;
  std::map<std::uint64_t, double> last_ts;  // per tid: ts monotonic
  std::size_t x_events = 0;
  while (std::getline(lines, line)) {
    std::uint64_t tid = 0;
    if (line.find("\"ph\": \"M\"") != std::string::npos &&
        line.find("thread_name") != std::string::npos) {
      ASSERT_TRUE(field_u64(line, "tid", &tid)) << line;
      EXPECT_TRUE(meta_tids.insert(tid).second)
          << "duplicate thread_name metadata for tid " << tid;
      continue;
    }
    if (line.find("\"ph\": \"X\"") == std::string::npos) continue;
    ++x_events;
    std::uint64_t pid = 0;
    double ts = -1.0;
    double dur = -1.0;
    ASSERT_TRUE(field_u64(line, "pid", &pid)) << line;
    ASSERT_TRUE(field_u64(line, "tid", &tid)) << line;
    ASSERT_TRUE(field_f64(line, "ts", &ts)) << line;
    ASSERT_TRUE(field_f64(line, "dur", &dur)) << line;
    EXPECT_EQ(pid, 1u);
    EXPECT_LE(tid, 2u);  // coordinator + 2 shards
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(dur, 0.0);
    auto [it, fresh] = last_ts.try_emplace(tid, ts);
    if (!fresh) {
      EXPECT_GE(ts, it->second) << "ts not monotonic on tid " << tid;
      it->second = ts;
    }
  }
  EXPECT_EQ(x_events, 4u);
  // One thread_name per track that has events, plus the coordinator.
  EXPECT_EQ(meta_tids.size(), 3u);  // tids 0, 1, 2
}

// --- End-to-end recording paths --------------------------------------------

bt::SwarmConfig tiny_swarm() {
  bt::SwarmConfig config;
  config.file_size = DataSize::kib(256);
  config.seeders = 1;
  config.clients = 4;
  config.start_interval = Duration::sec(1);
  config.max_duration = Duration::sec(4000);
  return config;
}

TEST(ProfilerEngine, WorkersRecordAllPhasesAtK2) {
  core::PlatformConfig pc;
  pc.physical_nodes = 4;
  pc.shards = 2;
  const bt::SwarmConfig config = tiny_swarm();
  core::Platform platform(
      topology::homogeneous_dsl(bt::swarm_vnodes(config)), pc);
  platform.enable_profiling();
  bt::Swarm swarm(platform, config);
  swarm.run();
  ASSERT_TRUE(swarm.all_complete());

  const Profiler& prof = platform.profiler();
  ASSERT_EQ(prof.shard_count(), 2u);
  bool saw_execute = false;
  bool saw_wait = false;
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_GT(prof.shard_ring(s).total(), 0u) << "shard " << s;
    for (const PhaseSample& sample : prof.shard_ring(s).samples()) {
      saw_execute = saw_execute || sample.phase == Phase::kExecute;
      saw_wait = saw_wait || sample.phase == Phase::kBarrierWait;
    }
  }
  EXPECT_TRUE(saw_execute);
  EXPECT_TRUE(saw_wait);
  // A 5-vnode swarm on 2 shards exchanges cross-shard packets, so the
  // coordinator must have timed merges.
  EXPECT_GT(prof.coordinator_ring().total(), 0u);

  const Rollup roll = prof.rollup();
  EXPECT_GT(roll.span_s, 0.0);
  for (const ShardRollup& sh : roll.shards) {
    EXPECT_GE(sh.utilization_pct, 0.0);
    EXPECT_LE(sh.utilization_pct, 100.0 + 1e-9);
    EXPECT_GT(sh.events, 0u);
  }
  EXPECT_GT(roll.merge_s, 0.0);
  EXPECT_GE(roll.imbalance_ratio, 1.0);
}

TEST(ProfilerClassic, ChunkLoopRecordsExecuteSamples) {
  core::PlatformConfig pc;
  pc.physical_nodes = 4;
  pc.shards = 0;  // classic single-threaded path
  const bt::SwarmConfig config = tiny_swarm();
  core::Platform platform(
      topology::homogeneous_dsl(bt::swarm_vnodes(config)), pc);
  platform.enable_profiling();
  bt::Swarm swarm(platform, config);
  swarm.run();
  ASSERT_TRUE(swarm.all_complete());

  const Profiler& prof = platform.profiler();
  ASSERT_EQ(prof.shard_count(), 1u);
  EXPECT_GT(prof.shard_ring(0).total(), 0u);
  for (const PhaseSample& sample : prof.shard_ring(0).samples()) {
    EXPECT_EQ(sample.phase, Phase::kExecute);
  }
  const Rollup roll = prof.rollup();
  EXPECT_GT(roll.shards[0].events, 0u);
  EXPECT_EQ(roll.merge_s, 0.0);  // no coordinator in classic mode
}

}  // namespace
}  // namespace p2plab::profile
