// Regression: a FaultPlan latency spike against a transferring socket must
// not poison the RTT estimator into a retransmission storm.
//
// The hazard: when the spike lands, the RTO fires once (the old estimate
// honestly undershoots the new path). Karn's algorithm then refuses RTT
// samples from retransmitted segments — so a naive estimator never learns
// the new RTT, keeps the stale small RTO, and every window times out again:
// a storm of spurious retransmissions for the whole spike window, ending in
// abort once consecutive timeouts exhaust. The fix (sockets/socket.cpp):
// acked progress resets the consecutive-timeout counter, and when every
// acked segment was retransmitted the time since its *first* transmission
// upper-bounds the RTT and may raise (never lower) the estimate.
#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "metrics/registry.hpp"
#include "topology/topology.hpp"

namespace p2plab::fault {
namespace {

SimTime at_sec(double s) { return SimTime::zero() + Duration::seconds(s); }

class KarnSpikeTest : public ::testing::TestWithParam<sockets::TransportModel> {
 protected:
  /// Run a 40 x 16 KiB transfer 0 -> 1 over the paper's DSL links (128 kb/s
  /// up: ~1 s serialization per block) with a latency spike of `extra` on
  /// the receiver's access pipes for `window`, under the given transport.
  /// Returns the number of blocks delivered.
  int run_transfer(Duration extra, Duration window) {
    core::PlatformConfig pc;
    pc.physical_nodes = 1;
    pc.seed = 7;
    pc.stream.transport = GetParam();
    platform = std::make_unique<core::Platform>(topology::homogeneous_dsl(2),
                                                pc);
    platform->bind_metrics(registry);

    FaultPlan plan;
    plan.latency_spike(1, at_sec(5), extra, window);
    FaultInjector injector(*platform, plan);
    injector.arm();

    int received = 0;
    auto& sim1 = platform->sim_of_vnode(1);
    sim1.schedule_at(at_sec(0.1), [this, &received, &sim1] {
      listener = platform->api(1).listen(
          6881, [&received](sockets::StreamSocketPtr s) {
            s->on_message([&received](sockets::Message&&) { ++received; });
          });
    });
    const Ipv4Addr remote = platform->api(1).effective_bind_address();
    platform->sim_of_vnode(0).schedule_at(at_sec(0.2), [this, remote] {
      platform->api(0).connect(remote, 6881, [](sockets::StreamSocketPtr s) {
        for (int i = 0; i < 40; ++i) {
          sockets::Message m;
          m.type = 9;
          m.size = DataSize::kib(16);
          s->send(m);
        }
      });
    });
    const auto result = platform->run(
        at_sec(400), [&received] { return received >= 40; },
        Duration::sec(1));
    EXPECT_NE(result, core::Platform::RunResult::kDeadline);
    finished_at = platform->now();
    return received;
  }

  std::unique_ptr<core::Platform> platform;
  metrics::Registry registry;
  sockets::ListenerPtr listener;
  SimTime finished_at;
};

TEST_P(KarnSpikeTest, LatencySpikeDoesNotCauseRetransmissionStorm) {
  // +2 s on both receiver pipes for 30 s: RTT jumps by ~4 s, far past any
  // estimate the 30 ms path could have produced.
  const int received = run_transfer(Duration::sec(2), Duration::sec(30));
  EXPECT_EQ(received, 40);
  EXPECT_EQ(registry.value("sockets.aborts"), 0.0);
  // One honest RTO when the spike lands (plus NewReno cleanup under kTcp)
  // is fine; a storm re-sends most of the 40 blocks. The estimator must
  // adapt within a handful of retransmissions.
  EXPECT_LE(registry.value("sockets.retransmits"), 8.0)
      << "RTT estimator failed to adapt to the spiked path";
  // The transfer is ~41 s of serialization; the spike shifts delivery by
  // seconds, not by a storm's worth of duplicate wire time.
  EXPECT_LT((finished_at - SimTime::zero()).to_seconds(), 70.0);
}

TEST_P(KarnSpikeTest, CleanPathStaysRetransmitFree) {
  // Control: same transfer, zero-width spike window — nothing may fire.
  const int received = run_transfer(Duration::zero(), Duration::zero());
  EXPECT_EQ(received, 40);
  EXPECT_EQ(registry.value("sockets.retransmits"), 0.0);
  EXPECT_EQ(registry.value("sockets.aborts"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Transports, KarnSpikeTest,
    ::testing::Values(sockets::TransportModel::kFlow,
                      sockets::TransportModel::kTcp),
    [](const ::testing::TestParamInfo<sockets::TransportModel>& param_info) {
      return std::string(
          param_info.param == sockets::TransportModel::kTcp ? "Tcp" : "Flow");
    });

}  // namespace
}  // namespace p2plab::fault
