// FaultPlan: builder, deterministic churn expansion, scenario parser.
#include "fault/plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace p2plab::fault {
namespace {

SimTime at_sec(double s) { return SimTime::zero() + Duration::seconds(s); }

TEST(FaultPlanBuilder, AppendsSpecsInOrderAndSortIsStable) {
  FaultPlan plan;
  plan.crash(4, at_sec(30))
      .link_down(2, at_sec(10), Duration::sec(5))
      .crash_and_rejoin(7, at_sec(10), Duration::sec(60))
      .tracker_outage(at_sec(20), Duration::sec(15));
  ASSERT_EQ(plan.size(), 4u);
  plan.sort();
  // Stable sort: the two t=10 entries keep insertion order.
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(plan.specs()[1].kind, FaultKind::kCrash);
  EXPECT_TRUE(plan.specs()[1].rejoin);
  EXPECT_EQ(plan.specs()[2].kind, FaultKind::kTrackerOutage);
  EXPECT_EQ(plan.specs()[3].kind, FaultKind::kCrash);
  EXPECT_FALSE(plan.specs()[3].rejoin);
}

TEST(FaultPlanChurn, VictimCountTimesAndDowntimesRespectConfig) {
  ChurnConfig config;
  config.first_node = 10;
  config.last_node = 49;  // population of 40
  config.fraction = 0.25;
  config.window_start = at_sec(100);
  config.window_end = at_sec(500);
  config.rejoin_fraction = 1.0;
  config.rejoin_min = Duration::sec(20);
  config.rejoin_max = Duration::sec(40);
  Rng rng{99};
  FaultPlan plan = FaultPlan::churn(config, rng);
  ASSERT_EQ(plan.size(), 10u);  // floor(40 * 0.25)
  std::set<std::size_t> victims;
  for (const FaultSpec& spec : plan.specs()) {
    EXPECT_EQ(spec.kind, FaultKind::kCrash);
    EXPECT_TRUE(spec.rejoin);
    EXPECT_GE(spec.node, 10u);
    EXPECT_LE(spec.node, 49u);
    EXPECT_GE(spec.at, config.window_start);
    EXPECT_LT(spec.at, config.window_end);
    EXPECT_GE(spec.duration, config.rejoin_min);
    EXPECT_LT(spec.duration, config.rejoin_max);
    victims.insert(spec.node);
  }
  EXPECT_EQ(victims.size(), 10u);  // no node fails twice
  EXPECT_TRUE(std::is_sorted(
      plan.specs().begin(), plan.specs().end(),
      [](const FaultSpec& a, const FaultSpec& b) { return a.at < b.at; }));
}

TEST(FaultPlanChurn, SameSeedSamePlanDifferentSeedDifferentPlan) {
  ChurnConfig config;
  config.first_node = 0;
  config.last_node = 99;
  config.fraction = 0.5;
  config.window_start = at_sec(0);
  config.window_end = at_sec(1000);
  auto expand = [&](std::uint64_t seed) {
    Rng rng{seed};
    return FaultPlan::churn(config, rng).specs();
  };
  auto same = [](const std::vector<FaultSpec>& a,
                 const std::vector<FaultSpec>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].kind != b[i].kind || a[i].node != b[i].node ||
          a[i].at != b[i].at || a[i].duration != b[i].duration ||
          a[i].rejoin != b[i].rejoin) {
        return false;
      }
    }
    return true;
  };
  EXPECT_TRUE(same(expand(7), expand(7)));
  EXPECT_FALSE(same(expand(7), expand(8)));
}

TEST(FaultPlanChurn, LeaveFractionProducesGracefulDepartures) {
  ChurnConfig config;
  config.first_node = 0;
  config.last_node = 199;
  config.fraction = 1.0;
  config.window_start = at_sec(0);
  config.window_end = at_sec(100);
  config.rejoin_fraction = 0.0;
  config.leave_fraction = 0.5;
  Rng rng{3};
  FaultPlan plan = FaultPlan::churn(config, rng);
  ASSERT_EQ(plan.size(), 200u);
  std::size_t leaves = 0;
  for (const FaultSpec& spec : plan.specs()) {
    leaves += spec.kind == FaultKind::kLeave;
  }
  EXPECT_GT(leaves, 70u);  // ~100 expected; loose 3-sigma-ish bounds
  EXPECT_LT(leaves, 130u);
}

TEST(FaultPlanParse, ParsesEveryDirectiveWithUnits) {
  const auto result = FaultPlan::parse(R"(
    # a full scenario
    crash node=4 at=30    # trailing comments are fine too
    crash node=5 at=45s rejoin=60
    leave node=6 at=50
    linkdown node=2 at=10 for=5s
    spike node=3 at=20 add=150ms for=30
    burstloss node=7 at=40 for=25 pgb=0.05 pbg=0.25 lossbad=0.9 lossgood=0.01
    tracker_outage at=100 for=60
  )");
  ASSERT_TRUE(result.plan.has_value()) << result.error;
  // parse() returns the plan time-sorted, not in file order.
  const auto& specs = result.plan->specs();
  ASSERT_EQ(specs.size(), 7u);

  EXPECT_EQ(specs[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(specs[0].node, 2u);
  EXPECT_EQ(specs[0].at, at_sec(10));  // bare numbers are seconds
  EXPECT_EQ(specs[0].duration, Duration::sec(5));

  EXPECT_EQ(specs[1].kind, FaultKind::kLatencySpike);
  EXPECT_EQ(specs[1].extra_latency, Duration::ms(150));
  EXPECT_EQ(specs[1].duration, Duration::sec(30));

  EXPECT_EQ(specs[2].kind, FaultKind::kCrash);
  EXPECT_EQ(specs[2].node, 4u);
  EXPECT_EQ(specs[2].at, at_sec(30));
  EXPECT_FALSE(specs[2].rejoin);

  EXPECT_EQ(specs[3].kind, FaultKind::kBurstLoss);
  EXPECT_DOUBLE_EQ(specs[3].burst.p_good_to_bad, 0.05);
  EXPECT_DOUBLE_EQ(specs[3].burst.p_bad_to_good, 0.25);
  EXPECT_DOUBLE_EQ(specs[3].burst.loss_bad, 0.9);
  EXPECT_DOUBLE_EQ(specs[3].burst.loss_good, 0.01);

  EXPECT_EQ(specs[4].kind, FaultKind::kCrash);
  EXPECT_EQ(specs[4].node, 5u);
  EXPECT_TRUE(specs[4].rejoin);
  EXPECT_EQ(specs[4].duration, Duration::sec(60));

  EXPECT_EQ(specs[5].kind, FaultKind::kLeave);
  EXPECT_EQ(specs[5].node, 6u);

  EXPECT_EQ(specs[6].kind, FaultKind::kTrackerOutage);
  EXPECT_EQ(specs[6].at, at_sec(100));
  EXPECT_EQ(specs[6].duration, Duration::sec(60));
}

TEST(FaultPlanParse, RejectsMalformedInputWithLineNumbers) {
  auto expect_error = [](std::string_view text) {
    const auto result = FaultPlan::parse(text);
    EXPECT_FALSE(result.plan.has_value()) << "accepted: " << text;
    EXPECT_NE(result.error.find("line"), std::string::npos) << result.error;
  };
  expect_error("explode node=1 at=3");            // unknown directive
  expect_error("crash at=3");                     // missing node
  expect_error("crash node=1");                   // missing time
  expect_error("crash node=x at=3");              // bad integer
  expect_error("linkdown node=1 at=3");           // missing window
  expect_error("spike node=1 at=3 for=5");        // missing add
  expect_error("burstloss node=1 at=3 for=5 pgb=1.5 pbg=0.5");  // p > 1
  expect_error("burstloss node=1 at=3 for=5 pgb=0.5 pbg=0");    // pbg = 0
  expect_error("crash node=1 at=3 bogus=7");      // unknown attribute
}

TEST(FaultPlanParse, KindNamesAreStable) {
  // Trace consumers key on these strings; changing them breaks CI greps.
  EXPECT_STREQ(fault_kind_name(FaultKind::kCrash), "crash");
  EXPECT_STREQ(fault_kind_name(FaultKind::kLeave), "leave");
  EXPECT_STREQ(fault_kind_name(FaultKind::kLinkDown), "link_down");
  EXPECT_STREQ(fault_kind_name(FaultKind::kLatencySpike), "latency_spike");
  EXPECT_STREQ(fault_kind_name(FaultKind::kBurstLoss), "burst_loss");
  EXPECT_STREQ(fault_kind_name(FaultKind::kTrackerOutage),
               "tracker_outage");
}

}  // namespace
}  // namespace p2plab::fault
