// FaultInjector: platform-level fault execution, hook ordering, trace
// pairing (every fault_injected has a matching fault_recovered), and
// bit-identical replay of a plan under the same seed.
#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "fault/plan.hpp"
#include "metrics/recorder.hpp"
#include "metrics/registry.hpp"

namespace p2plab::fault {
namespace {

SimTime at_sec(double s) { return SimTime::zero() + Duration::seconds(s); }

class InjectorTest : public ::testing::Test {
 protected:
  InjectorTest()
      : platform(topology::homogeneous_dsl(6),
                 core::PlatformConfig{.physical_nodes = 2}) {}

  void run_until(double sec) { platform.sim().run_until(at_sec(sec)); }

  ipfw::Pipe& up_pipe(std::size_t vnode) {
    return platform.host_of_vnode(vnode).firewall().pipe(
        platform.access_pipes(vnode).up);
  }
  ipfw::Pipe& down_pipe(std::size_t vnode) {
    return platform.host_of_vnode(vnode).firewall().pipe(
        platform.access_pipes(vnode).down);
  }

  core::Platform platform;
  std::vector<std::string> hook_log;
};

TEST_F(InjectorTest, CrashWithRejoinDrivesHooksAndPairsRecovery) {
  FaultPlan plan;
  plan.crash_and_rejoin(2, at_sec(10), Duration::sec(30));
  FaultInjector injector(platform, plan);
  injector.set_node_hooks(NodeHooks{
      .on_crash = [&](std::size_t v) {
        hook_log.push_back("crash:" + std::to_string(v));
      },
      .on_leave = nullptr,
      .on_rejoin = [&](std::size_t v) {
        hook_log.push_back("rejoin:" + std::to_string(v));
      }});
  injector.arm();

  run_until(5);
  EXPECT_TRUE(platform.vnode_online(2));
  EXPECT_EQ(injector.stats().injected, 0u);

  run_until(15);
  EXPECT_FALSE(platform.vnode_online(2));
  EXPECT_EQ(injector.stats().injected, 1u);
  EXPECT_EQ(injector.stats().unrecovered(), 1u);

  run_until(50);
  EXPECT_TRUE(platform.vnode_online(2));
  EXPECT_EQ(injector.stats().recovered, 1u);
  EXPECT_EQ(injector.stats().unrecovered(), 0u);
  EXPECT_EQ(hook_log,
            (std::vector<std::string>{"crash:2", "rejoin:2"}));
}

TEST_F(InjectorTest, PermanentCrashRecoversAtTeardown) {
  // "Recovered" means the emulator reached the intended post-fault state;
  // for a permanent departure that is the completed teardown itself.
  FaultPlan plan;
  plan.crash(3, at_sec(10));
  FaultInjector injector(platform, plan);
  injector.arm();
  run_until(20);
  EXPECT_FALSE(platform.vnode_online(3));
  EXPECT_EQ(injector.stats().injected, 1u);
  EXPECT_EQ(injector.stats().unrecovered(), 0u);
  run_until(100);
  EXPECT_FALSE(platform.vnode_online(3));  // never comes back
}

TEST_F(InjectorTest, LeaveGivesGraceBeforeDetaching) {
  FaultPlan plan;
  plan.leave(1, at_sec(10));
  FaultInjector injector(platform, plan,
                         InjectorConfig{.leave_grace = Duration::sec(2)});
  injector.set_node_hooks(NodeHooks{
      .on_crash = nullptr,
      .on_leave = [&](std::size_t v) {
        // The process says goodbye while its address still works.
        EXPECT_TRUE(platform.vnode_online(v));
        hook_log.push_back("leave:" + std::to_string(v));
      },
      .on_rejoin = nullptr});
  injector.arm();
  run_until(11);
  EXPECT_EQ(hook_log, (std::vector<std::string>{"leave:1"}));
  EXPECT_TRUE(platform.vnode_online(1));  // grace period
  EXPECT_EQ(injector.stats().unrecovered(), 1u);
  run_until(13);
  EXPECT_FALSE(platform.vnode_online(1));
  EXPECT_EQ(injector.stats().unrecovered(), 0u);
}

TEST_F(InjectorTest, LinkDownWindowSetsAndRestoresBothPipes) {
  FaultPlan plan;
  plan.link_down(2, at_sec(10), Duration::sec(5));
  FaultInjector injector(platform, plan);
  injector.arm();
  run_until(5);
  EXPECT_FALSE(up_pipe(2).is_down());
  EXPECT_FALSE(down_pipe(2).is_down());
  run_until(12);
  EXPECT_TRUE(up_pipe(2).is_down());
  EXPECT_TRUE(down_pipe(2).is_down());
  EXPECT_TRUE(platform.link_down(2));
  run_until(16);
  EXPECT_FALSE(up_pipe(2).is_down());
  EXPECT_FALSE(down_pipe(2).is_down());
  EXPECT_EQ(injector.stats().recovered, 1u);
}

TEST_F(InjectorTest, LatencySpikeAddsDelayThenRestoresBaseline) {
  const Duration base = up_pipe(4).config().delay;
  FaultPlan plan;
  plan.latency_spike(4, at_sec(10), Duration::ms(200), Duration::sec(5));
  FaultInjector injector(platform, plan);
  injector.arm();
  run_until(12);
  EXPECT_EQ(up_pipe(4).config().delay, base + Duration::ms(200));
  EXPECT_EQ(down_pipe(4).config().delay, base + Duration::ms(200));
  run_until(16);
  EXPECT_EQ(up_pipe(4).config().delay, base);
  EXPECT_EQ(injector.stats().unrecovered(), 0u);
}

TEST_F(InjectorTest, BurstLossOverrideIsWindowed) {
  ASSERT_FALSE(up_pipe(5).config().burst_loss.enabled());  // dsl default
  FaultPlan plan;
  plan.burst_loss(5, at_sec(10), Duration::sec(5),
                  ipfw::GilbertElliott{.p_good_to_bad = 0.1,
                                       .p_bad_to_good = 0.4,
                                       .loss_bad = 0.8});
  FaultInjector injector(platform, plan);
  injector.arm();
  run_until(12);
  EXPECT_TRUE(up_pipe(5).config().burst_loss.enabled());
  EXPECT_DOUBLE_EQ(up_pipe(5).config().burst_loss.p_good_to_bad, 0.1);
  EXPECT_TRUE(down_pipe(5).config().burst_loss.enabled());
  run_until(16);
  EXPECT_FALSE(up_pipe(5).config().burst_loss.enabled());
  EXPECT_EQ(injector.stats().recovered, 1u);
}

TEST_F(InjectorTest, OverlappingTrackerOutagesRefcount) {
  FaultPlan plan;
  plan.tracker_outage(at_sec(10), Duration::sec(20));  // [10, 30)
  plan.tracker_outage(at_sec(15), Duration::sec(20));  // [15, 35)
  std::size_t outages = 0, restores = 0;
  FaultInjector injector(platform, plan);
  injector.set_service_hooks(ServiceHooks{
      .on_tracker_outage = [&] { ++outages; },
      .on_tracker_restore = [&] { ++restores; }});
  injector.arm();
  run_until(20);
  EXPECT_EQ(outages, 1u);  // second window does not re-kill the tracker
  EXPECT_EQ(restores, 0u);
  run_until(32);
  EXPECT_EQ(restores, 0u);  // first window closed, second still open
  run_until(40);
  EXPECT_EQ(restores, 1u);
  EXPECT_EQ(injector.stats().injected, 2u);
  EXPECT_EQ(injector.stats().recovered, 2u);
}

TEST_F(InjectorTest, BindsMetricsRegistry) {
  metrics::Registry registry;
  FaultPlan plan;
  plan.crash_and_rejoin(2, at_sec(10), Duration::sec(5))
      .link_down(3, at_sec(12), Duration::sec(5));
  FaultInjector injector(platform, plan);
  injector.bind_metrics(registry);
  injector.arm();
  run_until(13);
  EXPECT_EQ(registry.value("fault.injected"), 2.0);
  EXPECT_EQ(registry.value("fault.active"), 2.0);
  run_until(30);
  EXPECT_EQ(registry.value("fault.recovered"), 2.0);
  EXPECT_EQ(registry.value("fault.active"), 0.0);
}

/// Run a mixed plan against a fresh platform and return the full trace as
/// a string (flushed through the recorder's JSONL writer).
std::string trace_of_run() {
  metrics::FlightRecorder recorder;
  metrics::FlightRecorder::set_active(&recorder);
  core::Platform platform(topology::homogeneous_dsl(6),
                          core::PlatformConfig{.physical_nodes = 2});
  FaultPlan plan;
  plan.crash_and_rejoin(2, at_sec(10), Duration::sec(20))
      .crash(3, at_sec(12))
      .link_down(4, at_sec(15), Duration::sec(5))
      .tracker_outage(at_sec(20), Duration::sec(10));
  FaultInjector injector(platform, plan);
  injector.arm();
  platform.sim().run_until(at_sec(60));
  metrics::FlightRecorder::set_active(nullptr);

  std::FILE* tmp = std::tmpfile();
  EXPECT_NE(tmp, nullptr);
  recorder.flush(tmp);
  std::string out;
  std::rewind(tmp);
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, tmp)) > 0) out.append(buf, n);
  std::fclose(tmp);
  return out;
}

TEST(InjectorTrace, SamePlanSameSeedYieldsBitIdenticalTrace) {
  const std::string a = trace_of_run();
  const std::string b = trace_of_run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // Pairing invariant, as CI checks it: equal numbers of injected and
  // recovered events.
  auto count = [&](std::string_view needle) {
    std::size_t hits = 0, pos = 0;
    while ((pos = a.find(needle, pos)) != std::string::npos) {
      ++hits;
      pos += needle.size();
    }
    return hits;
  };
  EXPECT_EQ(count("\"fault_injected\""), 4u);
  EXPECT_EQ(count("\"fault_recovered\""), 4u);
}

}  // namespace
}  // namespace p2plab::fault
