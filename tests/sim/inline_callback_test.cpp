#include "sim/inline_callback.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

namespace p2plab::sim {
namespace {

TEST(InlineCallback, DefaultAndNullptrAreEmpty) {
  InlineCallback empty;
  EXPECT_FALSE(empty);
  EXPECT_FALSE(empty.on_heap());
  InlineCallback null = nullptr;
  EXPECT_FALSE(null);
}

TEST(InlineCallback, SmallCaptureStaysInline) {
  int hits = 0;
  InlineCallback cb = [&hits] { ++hits; };
  ASSERT_TRUE(cb);
  EXPECT_FALSE(cb.on_heap());
  cb();
  cb();  // repeatedly invocable (PeriodicTask relies on this)
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, FullBudgetCaptureStaysInline) {
  // Exactly kInlineBytes of trivially-movable capture (the padding array
  // plus the captured pointer) must not fall back.
  std::array<char, InlineCallback::kInlineBytes - sizeof(int*)> block{};
  block[0] = 9;
  int out = 0;
  InlineCallback cb = [block, &out] { out = block[0]; };
  EXPECT_FALSE(cb.on_heap());
  cb();
  EXPECT_EQ(out, 9);
}

TEST(InlineCallback, OversizedCaptureFallsBackToHeapAndCounts) {
  const std::uint64_t before = InlineCallback::heap_fallbacks();
  std::array<char, InlineCallback::kInlineBytes + 1> big{};
  big[0] = 7;
  int out = 0;
  InlineCallback cb = [big, &out] { out = big[0]; };
  EXPECT_TRUE(cb.on_heap());
  EXPECT_EQ(InlineCallback::heap_fallbacks(), before + 1);
  InlineCallback moved = std::move(cb);  // heap move is a pointer steal
  EXPECT_FALSE(cb);                      // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(out, 7);
  EXPECT_EQ(InlineCallback::heap_fallbacks(), before + 1);  // move is free
}

TEST(InlineCallback, CarriesMoveOnlyCapture) {
  auto p = std::make_unique<int>(41);
  int out = 0;
  InlineCallback cb = [p = std::move(p), &out] { out = *p + 1; };
  EXPECT_FALSE(cb.on_heap());
  InlineCallback moved = std::move(cb);
  EXPECT_FALSE(cb);  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(moved);
  moved();
  EXPECT_EQ(out, 42);
}

TEST(InlineCallback, MoveAssignDestroysPreviousTarget) {
  auto first = std::make_shared<int>(1);
  std::weak_ptr<int> weak_first = first;
  InlineCallback cb = [t = std::move(first)] {};
  EXPECT_FALSE(weak_first.expired());
  cb = [] {};
  EXPECT_TRUE(weak_first.expired());
  ASSERT_TRUE(cb);
}

TEST(InlineCallback, NullptrAssignReleasesCaptures) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> weak = token;
  InlineCallback cb = [t = std::move(token)] {};
  cb = nullptr;
  EXPECT_TRUE(weak.expired());
  EXPECT_FALSE(cb);
}

TEST(InlineCallback, DestructionReleasesHeapTarget) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> weak = token;
  {
    std::array<char, 2 * InlineCallback::kInlineBytes> pad{};
    InlineCallback cb = [t = std::move(token), pad] { (void)pad; };
    EXPECT_TRUE(cb.on_heap());
    EXPECT_FALSE(weak.expired());
  }
  EXPECT_TRUE(weak.expired());
}

}  // namespace
}  // namespace p2plab::sim
