#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace p2plab::sim {
namespace {

TEST(Simulation, StartsAtZeroWithEmptyQueue) {
  Simulation sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, DispatchesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::zero() + Duration::ms(20), [&] { order.push_back(2); });
  sim.schedule_at(SimTime::zero() + Duration::ms(10), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::zero() + Duration::ms(30), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::zero() + Duration::ms(30));
}

TEST(Simulation, SameTimeEventsFifo) {
  Simulation sim;
  std::vector<int> order;
  const SimTime t = SimTime::zero() + Duration::ms(5);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  SimTime fired_at;
  sim.schedule_after(Duration::ms(10), [&] {
    sim.schedule_after(Duration::ms(5),
                       [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, SimTime::zero() + Duration::ms(15));
}

TEST(Simulation, ClockVisibleInsideCallback) {
  Simulation sim;
  sim.schedule_after(Duration::us(7), [&] {
    EXPECT_EQ(sim.now(), SimTime::zero() + Duration::us(7));
  });
  sim.run();
}

TEST(Simulation, CancelPreventsDispatch) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_after(Duration::ms(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelIsIdempotentAndSafeOnInvalid) {
  Simulation sim;
  const EventId id = sim.schedule_after(Duration::ms(1), [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(EventId{}));
  sim.run();
}

TEST(Simulation, CancelAfterFireReturnsFalse) {
  Simulation sim;
  const EventId id = sim.schedule_after(Duration::ms(1), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulation, PendingEventCountTracksCancels) {
  Simulation sim;
  const EventId a = sim.schedule_after(Duration::ms(1), [] {});
  sim.schedule_after(Duration::ms(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule_after(Duration::ms(10), [&] { ++fired; });
  sim.schedule_after(Duration::ms(20), [&] { ++fired; });
  sim.schedule_after(Duration::ms(30), [&] { ++fired; });
  sim.run_until(SimTime::zero() + Duration::ms(20));
  EXPECT_EQ(fired, 2);  // events at exactly the deadline run
  EXPECT_EQ(sim.now(), SimTime::zero() + Duration::ms(20));
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, RunUntilAdvancesClockWhenIdle) {
  Simulation sim;
  sim.run_until(SimTime::zero() + Duration::sec(5));
  EXPECT_EQ(sim.now(), SimTime::zero() + Duration::sec(5));
}

TEST(Simulation, RunWhileHonorsPredicate) {
  Simulation sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_after(Duration::ms(i), [&] { ++fired; });
  }
  sim.run_while([&] { return fired < 4; });
  EXPECT_EQ(fired, 4);
}

TEST(Simulation, EventsScheduledDuringRunAreDispatched) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(Duration::ms(1), recurse);
  };
  sim.schedule_after(Duration::ms(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime::zero() + Duration::ms(5));
}

TEST(Simulation, DispatchedEventsCounter) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule_after(Duration::ms(i + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.dispatched_events(), 7u);
}

// Property: random schedule order still dispatches in nondecreasing time.
TEST(Simulation, RandomScheduleDispatchesMonotonically) {
  Simulation sim;
  Rng rng(99);
  std::vector<SimTime> dispatch_times;
  for (int i = 0; i < 2000; ++i) {
    const auto when =
        SimTime::zero() + Duration::us(static_cast<std::int64_t>(rng.uniform(100000)));
    sim.schedule_at(when, [&, when] {
      EXPECT_EQ(sim.now(), when);
      dispatch_times.push_back(sim.now());
    });
  }
  sim.run();
  ASSERT_EQ(dispatch_times.size(), 2000u);
  for (size_t i = 1; i < dispatch_times.size(); ++i) {
    EXPECT_LE(dispatch_times[i - 1], dispatch_times[i]);
  }
}

// A stale EventId whose slot has been recycled by a newer event must not
// cancel the newer event (the classic ABA hazard of slot reuse; the seq
// stamp disambiguates).
TEST(Simulation, CancelOfRecycledSlotIsAbaSafe) {
  Simulation sim;
  bool a_fired = false;
  bool b_fired = false;
  const EventId a = sim.schedule_after(Duration::ms(1), [&] { a_fired = true; });
  sim.run();  // a fires; its slot returns to the free list
  EXPECT_TRUE(a_fired);
  ASSERT_EQ(sim.slab_size(), 1u);  // b below must recycle a's slot
  sim.schedule_after(Duration::ms(1), [&] { b_fired = true; });
  EXPECT_FALSE(sim.cancel(a));  // stale id: same slot, older seq
  sim.run();
  EXPECT_TRUE(b_fired);
}

TEST(Simulation, CancelOfCancelledThenRecycledSlotIsAbaSafe) {
  Simulation sim;
  const EventId a = sim.schedule_after(Duration::ms(1), [] {});
  EXPECT_TRUE(sim.cancel(a));
  sim.run();  // prunes a's heap entry, freeing the slot
  int fired = 0;
  sim.schedule_after(Duration::ms(1), [&] { ++fired; });
  EXPECT_FALSE(sim.cancel(a));  // must not hit the recycled slot
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, CompactShrinksSlabAndPreservesDispatch) {
  Simulation sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(sim.schedule_after(Duration::ms(1000 + i),
                                     [&order, i] { order.push_back(i); }));
  }
  // A burst that ended: cancel the long tail, keep a few early events.
  for (int i = 10; i < 5000; ++i) sim.cancel(ids[static_cast<size_t>(i)]);
  const size_t slots_before = sim.slab_size();
  sim.maybe_compact();
  EXPECT_LT(sim.slab_size(), slots_before);
  EXPECT_EQ(sim.pending_events(), 10u);
  // Stale ids stay invalid after the shrink; live ones stay cancellable.
  EXPECT_FALSE(sim.cancel(ids[20]));
  EXPECT_TRUE(sim.cancel(ids[5]));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 6, 7, 8, 9}));
}

TEST(Simulation, CompactKeepsSchedulingUsable) {
  Simulation sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(sim.schedule_after(Duration::ms(i + 1), [] {}));
  }
  for (const EventId id : ids) sim.cancel(id);
  sim.compact();
  EXPECT_EQ(sim.slab_size(), 0u);
  int fired = 0;
  sim.schedule_after(Duration::ms(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(PeriodicTask, FiresOnCadence) {
  Simulation sim;
  PeriodicTask task;
  std::vector<SimTime> fires;
  task.start(sim, Duration::sec(10), Duration::sec(1),
             [&] { fires.push_back(sim.now()); });
  sim.run_until(SimTime::zero() + Duration::sec(31));
  ASSERT_EQ(fires.size(), 4u);  // t = 1, 11, 21, 31
  EXPECT_EQ(fires[0], SimTime::zero() + Duration::sec(1));
  EXPECT_EQ(fires[3], SimTime::zero() + Duration::sec(31));
  task.stop();
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, StopFromInsideCallback) {
  Simulation sim;
  PeriodicTask task;
  int fires = 0;
  task.start(sim, Duration::sec(1), Duration::sec(1), [&] {
    if (++fires == 3) task.stop();
  });
  sim.run();
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTask, RestartReplacesSchedule) {
  Simulation sim;
  PeriodicTask task;
  int first = 0;
  int second = 0;
  task.start(sim, Duration::sec(1), Duration::zero(), [&] { ++first; });
  task.start(sim, Duration::sec(1), Duration::zero(), [&] { ++second; });
  sim.run_until(SimTime::zero() + Duration::millis(2500));
  task.stop();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 3);  // t = 0, 1, 2
}

}  // namespace
}  // namespace p2plab::sim
