#include "sockets/socket.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace p2plab::sockets {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }
CidrBlock cidr(const char* text) { return *CidrBlock::parse(text); }

/// Two hosts, one vnode each, a SocketApi per vnode process.
class SocketTest : public ::testing::Test {
 protected:
  SocketTest() {
    hostA = &network.add_host("node1", ip("192.168.38.1"));
    hostB = &network.add_host("node2", ip("192.168.38.2"));
    vnA = std::make_unique<vnode::VirtualNode>(*hostA, 1, ip("10.0.0.1"));
    vnB = std::make_unique<vnode::VirtualNode>(*hostB, 2, ip("10.0.0.51"));
    procA = std::make_unique<vnode::Process>(*vnA);
    procB = std::make_unique<vnode::Process>(*vnB);
    apiA = std::make_unique<SocketApi>(mgr, *procA);
    apiB = std::make_unique<SocketApi>(mgr, *procB);
  }

  Message text_message(const std::string& text) {
    return Message{.type = 1,
                   .size = DataSize::bytes(text.size()),
                   .body = std::make_shared<const std::string>(text)};
  }

  sim::Simulation sim;
  net::Network network{sim, Rng{1}};
  SocketManager mgr{network};
  net::Host* hostA = nullptr;
  net::Host* hostB = nullptr;
  std::unique_ptr<vnode::VirtualNode> vnA;
  std::unique_ptr<vnode::VirtualNode> vnB;
  std::unique_ptr<vnode::Process> procA;
  std::unique_ptr<vnode::Process> procB;
  std::unique_ptr<SocketApi> apiA;
  std::unique_ptr<SocketApi> apiB;
};

TEST_F(SocketTest, ConnectEstablishesBothEnds) {
  StreamSocketPtr client;
  StreamSocketPtr server;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) { server = s; });
  apiA->connect(ip("10.0.0.51"), 6881,
                [&](StreamSocketPtr s) { client = s; });
  sim.run();
  ASSERT_TRUE(client != nullptr);
  ASSERT_TRUE(server != nullptr);
  EXPECT_TRUE(client->connected());
  EXPECT_TRUE(server->connected());
  // Interception bound the client to its vnode address, not the admin IP.
  EXPECT_EQ(client->local_ip(), ip("10.0.0.1"));
  EXPECT_EQ(server->remote_ip(), ip("10.0.0.1"));
  EXPECT_EQ(client->remote_port(), 6881);
  EXPECT_EQ(listener->connection_count(), 1u);
}

TEST_F(SocketTest, StaticBinaryConnectsFromAdminAddress) {
  vnode::Process static_proc(*vnA, vnode::LinkMode::kStatic);
  SocketApi static_api(mgr, static_proc);
  StreamSocketPtr server;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) { server = s; });
  StreamSocketPtr client;
  static_api.connect(ip("10.0.0.51"), 6881,
                     [&](StreamSocketPtr s) { client = s; });
  sim.run();
  ASSERT_TRUE(server != nullptr);
  // Interception failed: the peer sees the physical node's identity.
  EXPECT_EQ(server->remote_ip(), ip("192.168.38.1"));
}

TEST_F(SocketTest, MessagesDeliveredInOrder) {
  std::vector<std::string> received;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) {
    s->on_message([&received](Message&& m) {
      received.push_back(m.as<std::string>());
    });
  });
  apiA->connect(ip("10.0.0.51"), 6881, [&](StreamSocketPtr s) {
    s->send(text_message("one"));
    s->send(text_message("two"));
    s->send(text_message("three"));
  });
  sim.run();
  EXPECT_EQ(received,
            (std::vector<std::string>{"one", "two", "three"}));
}

TEST_F(SocketTest, BidirectionalTraffic) {
  std::vector<std::string> at_server;
  std::vector<std::string> at_client;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) {
    s->on_message([&, s](Message&& m) {
      at_server.push_back(m.as<std::string>());
      s->send(text_message("reply-" + m.as<std::string>()));
    });
  });
  apiA->connect(ip("10.0.0.51"), 6881, [&](StreamSocketPtr s) {
    s->on_message(
        [&](Message&& m) { at_client.push_back(m.as<std::string>()); });
    s->send(text_message("ping"));
  });
  sim.run();
  EXPECT_EQ(at_server, (std::vector<std::string>{"ping"}));
  EXPECT_EQ(at_client, (std::vector<std::string>{"reply-ping"}));
}

TEST_F(SocketTest, ByteCountersTrack) {
  StreamSocketPtr client;
  StreamSocketPtr server;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) { server = s; });
  apiA->connect(ip("10.0.0.51"), 6881, [&](StreamSocketPtr s) {
    client = s;
    Message m;
    m.type = 7;
    m.size = DataSize::kib(16);
    s->send(m);
  });
  sim.run();
  ASSERT_TRUE(client && server);
  EXPECT_EQ(client->bytes_sent(), DataSize::kib(16).count_bytes());
  EXPECT_EQ(server->bytes_received(), DataSize::kib(16).count_bytes());
}

TEST_F(SocketTest, ThroughputLimitedByPipe) {
  // Shape A's uplink at 128 kb/s; 10 x 16 KiB should take ~10.24 s.
  const auto up = hostA->firewall().create_pipe(
      {.bandwidth = Bandwidth::kbps(128), .delay = Duration::ms(30),
       .queue_limit = DataSize::mib(2)});
  hostA->firewall().add_rule({.number = 100, .src = cidr("10.0.0.1/32"),
                              .dst = CidrBlock::any(),
                              .action = ipfw::RuleAction::kPipe, .pipe = up});
  int received = 0;
  SimTime last;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) {
    s->on_message([&](Message&&) {
      ++received;
      last = sim.now();
    });
  });
  apiA->connect(ip("10.0.0.51"), 6881, [&](StreamSocketPtr s) {
    for (int i = 0; i < 10; ++i) {
      Message m;
      m.type = 1;
      m.size = DataSize::kib(16);
      s->send(m);
    }
  });
  sim.run();
  EXPECT_EQ(received, 10);
  EXPECT_NEAR(last.to_seconds(), 10 * 1.024 + 0.06, 0.3);
}

TEST_F(SocketTest, SrttReflectsPathLatency) {
  const auto up = hostA->firewall().create_pipe({.delay = Duration::ms(50)});
  hostA->firewall().add_rule({.number = 100, .src = cidr("10.0.0.1/32"),
                              .dst = CidrBlock::any(),
                              .action = ipfw::RuleAction::kPipe, .pipe = up});
  const auto down = hostA->firewall().create_pipe({.delay = Duration::ms(50)});
  hostA->firewall().add_rule({.number = 110, .src = CidrBlock::any(),
                              .dst = cidr("10.0.0.1/32"),
                              .action = ipfw::RuleAction::kPipe,
                              .pipe = down});
  StreamSocketPtr client;
  auto listener = apiB->listen(6881, [](StreamSocketPtr) {});
  apiA->connect(ip("10.0.0.51"), 6881,
                [&](StreamSocketPtr s) { client = s; });
  sim.run();
  ASSERT_TRUE(client);
  EXPECT_NEAR(client->srtt().to_millis(), 100.0, 10.0);
}

TEST_F(SocketTest, CloseNotifiesRemote) {
  bool closed = false;
  StreamSocketPtr client;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) {
    s->on_close([&] { closed = true; });
  });
  apiA->connect(ip("10.0.0.51"), 6881,
                [&](StreamSocketPtr s) { client = s; });
  sim.run();
  ASSERT_TRUE(client);
  client->close();
  sim.run();
  EXPECT_TRUE(closed);
  EXPECT_TRUE(client->closed());
  EXPECT_EQ(listener->connection_count(), 0u);
}

TEST_F(SocketTest, SendAfterCloseIsNoOp) {
  StreamSocketPtr client;
  auto listener = apiB->listen(6881, [](StreamSocketPtr) {});
  apiA->connect(ip("10.0.0.51"), 6881,
                [&](StreamSocketPtr s) { client = s; });
  sim.run();
  ASSERT_TRUE(client);
  client->close();
  client->send(text_message("late"));
  sim.run();
  EXPECT_EQ(client->bytes_sent(), 0u);
}

TEST_F(SocketTest, ConnectToNobodyFails) {
  bool failed = false;
  bool connected = false;
  apiA->connect(ip("10.0.0.99"), 6881,
                [&](StreamSocketPtr) { connected = true; },
                [&] { failed = true; });
  sim.run();
  EXPECT_TRUE(failed);
  EXPECT_FALSE(connected);
}

TEST_F(SocketTest, ConnectToClosedPortFails) {
  bool failed = false;
  apiA->connect(ip("10.0.0.51"), 7000, [](StreamSocketPtr) {},
                [&] { failed = true; });
  sim.run();
  EXPECT_TRUE(failed);
}

TEST_F(SocketTest, LossyPathStillDeliversEverything) {
  // 5% random loss on the uplink: retransmission must recover, in order.
  const auto up = hostA->firewall().create_pipe(
      {.bandwidth = Bandwidth::mbps(10), .delay = Duration::ms(10),
       .loss_rate = 0.05, .queue_limit = DataSize::mib(4)});
  hostA->firewall().add_rule({.number = 100, .src = cidr("10.0.0.1/32"),
                              .dst = CidrBlock::any(),
                              .action = ipfw::RuleAction::kPipe, .pipe = up});
  std::vector<int> received;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) {
    s->on_message([&](Message&& m) {
      received.push_back(static_cast<int>(m.as<int>()));
    });
  });
  apiA->connect(ip("10.0.0.51"), 6881, [&](StreamSocketPtr s) {
    for (int i = 0; i < 200; ++i) {
      Message m;
      m.type = 2;
      m.size = DataSize::kib(4);
      m.body = std::make_shared<const int>(i);
      s->send(m);
    }
  });
  sim.run();
  ASSERT_EQ(received.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
}

TEST_F(SocketTest, ManyConnectionsShareListener) {
  int accepted = 0;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr) { ++accepted; });
  for (int i = 0; i < 10; ++i) {
    apiA->connect(ip("10.0.0.51"), 6881, [](StreamSocketPtr) {});
  }
  sim.run();
  EXPECT_EQ(accepted, 10);
  EXPECT_EQ(listener->connection_count(), 10u);
}

TEST_F(SocketTest, StopAcceptingRefusesNew) {
  int accepted = 0;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr) { ++accepted; });
  listener->stop_accepting();
  bool failed = false;
  apiA->connect(ip("10.0.0.51"), 6881, [](StreamSocketPtr) {},
                [&] { failed = true; });
  sim.run();
  EXPECT_EQ(accepted, 0);
  EXPECT_TRUE(failed);
}

TEST_F(SocketTest, WindowBackpressureQueuesSends) {
  // Send far beyond the 256 KiB window at once; all must still arrive.
  int received = 0;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) {
    s->on_message([&](Message&&) { ++received; });
  });
  apiA->connect(ip("10.0.0.51"), 6881, [&](StreamSocketPtr s) {
    for (int i = 0; i < 100; ++i) {
      Message m;
      m.type = 1;
      m.size = DataSize::kib(16);  // 1.6 MiB total
      s->send(m);
    }
  });
  sim.run();
  EXPECT_EQ(received, 100);
}

TEST_F(SocketTest, EphemeralPortsAreDistinct) {
  const std::uint16_t p1 = mgr.alloc_ephemeral_port(ip("10.0.0.1"));
  const std::uint16_t p2 = mgr.alloc_ephemeral_port(ip("10.0.0.1"));
  EXPECT_NE(p1, p2);
  EXPECT_GE(p1, 49152);
}

}  // namespace
}  // namespace p2plab::sockets
