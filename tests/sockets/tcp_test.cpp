// The kTcp transport model: slow start, fast retransmit on triple
// duplicate ACKs, NewReno recovery, and the RTO path's cwnd collapse —
// the loss-responsive behaviour the kFlow model deliberately lacks.
#include <gtest/gtest.h>

#include <vector>

#include "metrics/registry.hpp"
#include "sockets/socket.hpp"

namespace p2plab::sockets {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }
CidrBlock cidr(const char* text) { return *CidrBlock::parse(text); }

StreamConfig tcp_config() {
  StreamConfig config;
  config.transport = TransportModel::kTcp;
  return config;
}

class TcpSocketTest : public ::testing::Test {
 protected:
  TcpSocketTest() {
    hostA = &network.add_host("node1", ip("192.168.38.1"));
    hostB = &network.add_host("node2", ip("192.168.38.2"));
    vnA = std::make_unique<vnode::VirtualNode>(*hostA, 1, ip("10.0.0.1"));
    vnB = std::make_unique<vnode::VirtualNode>(*hostB, 2, ip("10.0.0.51"));
    procA = std::make_unique<vnode::Process>(*vnA);
    procB = std::make_unique<vnode::Process>(*vnB);
    apiA = std::make_unique<SocketApi>(mgr, *procA);
    apiB = std::make_unique<SocketApi>(mgr, *procB);
    mgr.bind_metrics(registry);
  }

  /// Shape A's uplink through a pipe and keep the id so tests can drop a
  /// deterministic window of segments (set_down).
  void shape_uplink_a(Bandwidth bw, double loss_rate = 0.0) {
    uplink = hostA->firewall().create_pipe(
        {.bandwidth = bw, .delay = Duration::ms(30),
         .loss_rate = loss_rate, .queue_limit = DataSize::mib(8)});
    hostA->firewall().add_rule({.number = 100, .src = cidr("10.0.0.1/32"),
                                .dst = CidrBlock::any(),
                                .dir = ipfw::RuleDir::kOut,
                                .action = ipfw::RuleAction::kPipe,
                                .pipe = uplink});
  }

  ipfw::Pipe& uplink_pipe() { return hostA->firewall().pipe(uplink); }

  Message block(std::uint64_t bytes) {
    Message m;
    m.type = 9;
    m.size = DataSize::bytes(bytes);
    return m;
  }

  /// Drop every segment the uplink pipe admits inside [from, to).
  void drop_window(double from_s, double to_s) {
    sim.schedule_at(SimTime::zero() + Duration::seconds(from_s),
                    [this] { uplink_pipe().set_down(true); });
    sim.schedule_at(SimTime::zero() + Duration::seconds(to_s),
                    [this] { uplink_pipe().set_down(false); });
  }

  sim::Simulation sim;
  net::Network network{sim, Rng{1}};
  SocketManager mgr{network, {}, tcp_config()};
  metrics::Registry registry;
  ipfw::PipeId uplink = 0;
  net::Host* hostA = nullptr;
  net::Host* hostB = nullptr;
  std::unique_ptr<vnode::VirtualNode> vnA;
  std::unique_ptr<vnode::VirtualNode> vnB;
  std::unique_ptr<vnode::Process> procA;
  std::unique_ptr<vnode::Process> procB;
  std::unique_ptr<SocketApi> apiA;
  std::unique_ptr<SocketApi> apiB;
};

TEST_F(TcpSocketTest, SlowStartGrowsCwndByAckedBytes) {
  shape_uplink_a(Bandwidth::kbps(256));
  StreamSocketPtr client;
  int received = 0;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) {
    s->on_message([&](Message&&) { ++received; });
  });
  apiA->connect(ip("10.0.0.51"), 6881, [&](StreamSocketPtr s) {
    client = s;
    for (int i = 0; i < 40; ++i) s->send(block(1024));
  });
  sim.run();
  ASSERT_TRUE(client);
  EXPECT_EQ(received, 40);
  const StreamConfig cfg = tcp_config();
  // Clean path, all below ssthresh: every acked byte grew the window.
  EXPECT_EQ(client->cwnd(),
            cfg.tcp_initial_cwnd.count_bytes() + 40ull * 1024);
  EXPECT_EQ(client->ssthresh(), cfg.send_window.count_bytes());
  EXPECT_EQ(mgr.metrics().retransmits.value(), 0u);
  EXPECT_EQ(mgr.metrics().cwnd_halvings.value(), 0u);
}

TEST_F(TcpSocketTest, TripleDupAckTriggersFastRetransmitBeforeRto) {
  // 1 KiB messages at 256 kb/s serialize in ~33 ms; the initial window
  // keeps ~14 in flight and acks clock out new segments every ~33 ms from
  // t~0.13 s. A 70 ms outage while the ack clock is still pumping drops
  // the couple of segments enqueued in that window; the many segments
  // sent behind the hole generate duplicate ACKs well inside the 1 s RTO
  // floor — recovery must come from the dup-ack path.
  shape_uplink_a(Bandwidth::kbps(256));
  std::vector<int> received;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) {
    s->on_message([&](Message&& m) {
      received.push_back(static_cast<int>(m.size.count_bytes()));
    });
  });
  apiA->connect(ip("10.0.0.51"), 6881, [&](StreamSocketPtr s) {
    for (int i = 0; i < 50; ++i) s->send(block(1024));
  });
  drop_window(0.2, 0.27);
  sim.run();
  EXPECT_EQ(received.size(), 50u);
  EXPECT_GE(mgr.metrics().fast_retransmits.value(), 1u);
  EXPECT_EQ(mgr.metrics().rto_recoveries.value(), 0u)
      << "loss inside a flowing window must recover via dup-acks, not RTO";
  EXPECT_GE(mgr.metrics().cwnd_halvings.value(), 1u);
  EXPECT_EQ(mgr.metrics().aborts.value(), 0u);
}

TEST_F(TcpSocketTest, FullWindowLossFallsBackToRtoAndCollapsesCwnd) {
  // A 1.2 s outage swallows the whole flight *and* the ack clock: only
  // the retransmission timer can restart the transfer, at cwnd = 1 MSS.
  shape_uplink_a(Bandwidth::kbps(256));
  StreamSocketPtr client;
  int received = 0;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) {
    s->on_message([&](Message&&) { ++received; });
  });
  apiA->connect(ip("10.0.0.51"), 6881, [&](StreamSocketPtr s) {
    client = s;
    for (int i = 0; i < 100; ++i) s->send(block(1024));
  });
  drop_window(1.0, 2.2);
  sim.run();
  ASSERT_TRUE(client);
  EXPECT_EQ(received, 100);
  EXPECT_GE(mgr.metrics().rto_recoveries.value(), 1u);
  EXPECT_EQ(mgr.metrics().aborts.value(), 0u);
}

TEST_F(TcpSocketTest, LossyPathStillDeliversEverythingInOrder) {
  // 20% random loss: fast retransmit + RTO recovery together must hand
  // the application the exact ordered byte stream.
  shape_uplink_a(Bandwidth::mbps(10), /*loss_rate=*/0.2);
  std::vector<int> received;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) {
    s->on_message([&](Message&& m) {
      received.push_back(m.type == 9 ? static_cast<int>(m.size.count_bytes())
                                     : -1);
    });
  });
  apiA->connect(ip("10.0.0.51"), 6881, [&](StreamSocketPtr s) {
    for (std::uint64_t i = 0; i < 50; ++i) s->send(block(1024 + i));
  });
  sim.run();
  ASSERT_EQ(received.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(received[i], 1024 + static_cast<int>(i));
  }
  EXPECT_GE(mgr.metrics().retransmits.value(), 1u);
  EXPECT_EQ(mgr.metrics().aborts.value(), 0u);
}

TEST(FlowModelTest, KeepsStaticWindowAndNoTcpCounters) {
  // Same kind of outage under the legacy flow model: it recovers through
  // the go-back-N RTO path and never touches the TCP counters or cwnd.
  sim::Simulation sim;
  net::Network network{sim, Rng{1}};
  SocketManager mgr{network};  // default StreamConfig: kFlow
  metrics::Registry registry;
  mgr.bind_metrics(registry);
  auto& hostA = network.add_host("node1", ip("192.168.38.1"));
  auto& hostB = network.add_host("node2", ip("192.168.38.2"));
  vnode::VirtualNode vnA{hostA, 1, ip("10.0.0.1")};
  vnode::VirtualNode vnB{hostB, 2, ip("10.0.0.51")};
  vnode::Process procA{vnA};
  vnode::Process procB{vnB};
  SocketApi apiA{mgr, procA};
  SocketApi apiB{mgr, procB};
  const ipfw::PipeId uplink = hostA.firewall().create_pipe(
      {.bandwidth = Bandwidth::kbps(256), .delay = Duration::ms(30),
       .queue_limit = DataSize::mib(8)});
  hostA.firewall().add_rule({.number = 100, .src = cidr("10.0.0.1/32"),
                             .dst = CidrBlock::any(),
                             .dir = ipfw::RuleDir::kOut,
                             .action = ipfw::RuleAction::kPipe,
                             .pipe = uplink});
  StreamSocketPtr client;
  int received = 0;
  auto listener = apiB.listen(6882, [&](StreamSocketPtr s) {
    s->on_message([&](Message&&) { ++received; });
  });
  apiA.connect(ip("10.0.0.51"), 6882, [&](StreamSocketPtr s) {
    client = s;
    for (int i = 0; i < 30; ++i) {
      Message m;
      m.type = 9;
      m.size = DataSize::bytes(1024);
      s->send(m);
    }
  });
  sim.schedule_at(SimTime::zero() + Duration::seconds(1.0),
                  [&] { hostA.firewall().pipe(uplink).set_down(true); });
  sim.schedule_at(SimTime::zero() + Duration::seconds(2.2),
                  [&] { hostA.firewall().pipe(uplink).set_down(false); });
  sim.run();
  ASSERT_TRUE(client);
  EXPECT_EQ(received, 30);
  EXPECT_EQ(client->cwnd(), StreamConfig{}.send_window.count_bytes());
  EXPECT_EQ(mgr.metrics().fast_retransmits.value(), 0u);
  EXPECT_EQ(mgr.metrics().rto_recoveries.value(), 0u);
  EXPECT_EQ(mgr.metrics().cwnd_halvings.value(), 0u);
}

}  // namespace
}  // namespace p2plab::sockets
