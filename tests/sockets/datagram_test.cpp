// UDP datagram sockets: the "similar approach is possible for UDP" path.
#include <gtest/gtest.h>

#include <vector>

#include "sockets/socket.hpp"

namespace p2plab::sockets {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }
CidrBlock cidr(const char* text) { return *CidrBlock::parse(text); }

class DatagramTest : public ::testing::Test {
 protected:
  DatagramTest() {
    hostA = &network.add_host("node1", ip("192.168.38.1"));
    hostB = &network.add_host("node2", ip("192.168.38.2"));
    vnA = std::make_unique<vnode::VirtualNode>(*hostA, 1, ip("10.0.0.1"));
    vnB = std::make_unique<vnode::VirtualNode>(*hostB, 2, ip("10.0.0.51"));
    procA = std::make_unique<vnode::Process>(*vnA);
    procB = std::make_unique<vnode::Process>(*vnB);
    apiA = std::make_unique<SocketApi>(mgr, *procA);
    apiB = std::make_unique<SocketApi>(mgr, *procB);
  }

  Message payload(std::uint32_t tag, std::uint64_t bytes = 100) {
    Message m;
    m.type = tag;
    m.size = DataSize::bytes(bytes);
    return m;
  }

  sim::Simulation sim;
  net::Network network{sim, Rng{1}};
  SocketManager mgr{network};
  net::Host* hostA = nullptr;
  net::Host* hostB = nullptr;
  std::unique_ptr<vnode::VirtualNode> vnA;
  std::unique_ptr<vnode::VirtualNode> vnB;
  std::unique_ptr<vnode::Process> procA;
  std::unique_ptr<vnode::Process> procB;
  std::unique_ptr<SocketApi> apiA;
  std::unique_ptr<SocketApi> apiB;
};

TEST_F(DatagramTest, BindInterceptedToVnodeAddress) {
  auto sock = apiA->udp_bind(5000);
  EXPECT_EQ(sock->local_ip(), ip("10.0.0.1"));
  EXPECT_EQ(sock->local_port(), 5000);
}

TEST_F(DatagramTest, SendAndReceiveWithSourceAddress) {
  auto server = apiB->udp_bind(5000);
  Ipv4Addr from;
  std::uint16_t from_port = 0;
  std::uint32_t got_tag = 0;
  server->on_message([&](Message&& m, Ipv4Addr src, std::uint16_t src_port) {
    got_tag = m.type;
    from = src;
    from_port = src_port;
  });
  auto client = apiA->udp_bind();
  client->send_to(ip("10.0.0.51"), 5000, payload(77));
  sim.run();
  EXPECT_EQ(got_tag, 77u);
  EXPECT_EQ(from, ip("10.0.0.1"));
  EXPECT_EQ(from_port, client->local_port());
  EXPECT_EQ(server->datagrams_received(), 1u);
  EXPECT_EQ(client->datagrams_sent(), 1u);
}

TEST_F(DatagramTest, ReplyPath) {
  auto server = apiB->udp_bind(5000);
  server->on_message(
      [&](Message&&, Ipv4Addr src, std::uint16_t src_port) {
        server->send_to(src, src_port, payload(2));
      });
  auto client = apiA->udp_bind();
  std::uint32_t reply = 0;
  client->on_message(
      [&](Message&& m, Ipv4Addr, std::uint16_t) { reply = m.type; });
  client->send_to(ip("10.0.0.51"), 5000, payload(1));
  sim.run();
  EXPECT_EQ(reply, 2u);
}

TEST_F(DatagramTest, NoReliability) {
  // 50% loss on A's uplink: roughly half the datagrams vanish silently.
  const auto lossy = hostA->firewall().create_pipe(
      {.bandwidth = Bandwidth::mbps(10), .loss_rate = 0.5,
       .queue_limit = DataSize::mib(1)});
  hostA->firewall().add_rule({.number = 100, .src = cidr("10.0.0.1/32"),
                              .dst = CidrBlock::any(),
                              .dir = ipfw::RuleDir::kOut,
                              .action = ipfw::RuleAction::kPipe,
                              .pipe = lossy});
  auto server = apiB->udp_bind(5000);
  int received = 0;
  server->on_message([&](Message&&, Ipv4Addr, std::uint16_t) { ++received; });
  auto client = apiA->udp_bind();
  for (int i = 0; i < 500; ++i) {
    client->send_to(ip("10.0.0.51"), 5000, payload(1));
  }
  sim.run();
  EXPECT_GT(received, 175);
  EXPECT_LT(received, 325);
}

TEST_F(DatagramTest, ShapedByAccessPipes) {
  const auto up = hostA->firewall().create_pipe(
      {.bandwidth = Bandwidth::kbps(128), .delay = Duration::ms(30),
       .queue_limit = DataSize::mib(1)});
  hostA->firewall().add_rule({.number = 100, .src = cidr("10.0.0.1/32"),
                              .dst = CidrBlock::any(),
                              .dir = ipfw::RuleDir::kOut,
                              .action = ipfw::RuleAction::kPipe, .pipe = up});
  auto server = apiB->udp_bind(5000);
  SimTime last;
  int received = 0;
  server->on_message([&](Message&&, Ipv4Addr, std::uint16_t) {
    ++received;
    last = sim.now();
  });
  auto client = apiA->udp_bind();
  for (int i = 0; i < 4; ++i) {
    client->send_to(ip("10.0.0.51"), 5000, payload(1, 16384));
  }
  sim.run();
  EXPECT_EQ(received, 4);
  // 4 x ~16.4 KiB at 128 kb/s ~ 4.1 s plus latency.
  EXPECT_NEAR(last.to_seconds(), 4.2, 0.2);
}

TEST_F(DatagramTest, PortsIndependentFromTcp) {
  // The same port number can be bound by TCP and UDP simultaneously.
  auto listener = apiB->listen(5000, [](StreamSocketPtr) {});
  auto udp = apiB->udp_bind(5000);
  EXPECT_EQ(udp->local_port(), 5000);
}

TEST_F(DatagramTest, CloseStopsDelivery) {
  auto server = apiB->udp_bind(5000);
  int received = 0;
  server->on_message([&](Message&&, Ipv4Addr, std::uint16_t) { ++received; });
  auto client = apiA->udp_bind();
  client->send_to(ip("10.0.0.51"), 5000, payload(1));
  sim.run();
  server->close();
  client->send_to(ip("10.0.0.51"), 5000, payload(1));
  sim.run();
  EXPECT_EQ(received, 1);
  // Sending from a closed socket is a no-op.
  client->close();
  client->send_to(ip("10.0.0.51"), 5000, payload(1));
  EXPECT_EQ(client->datagrams_sent(), 2u);
}

TEST_F(DatagramTest, EphemeralPortsDistinct) {
  auto s1 = apiA->udp_bind();
  auto s2 = apiA->udp_bind();
  EXPECT_NE(s1->local_port(), s2->local_port());
}

TEST_F(DatagramTest, StaticBinaryLeaksPhysicalAddress) {
  vnode::Process static_proc(*vnA, vnode::LinkMode::kStatic);
  SocketApi static_api(mgr, static_proc);
  auto sock = static_api.udp_bind(6000);
  EXPECT_EQ(sock->local_ip(), ip("192.168.38.1"));  // admin address
}

}  // namespace
}  // namespace p2plab::sockets
