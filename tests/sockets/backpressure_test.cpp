// Tests for the send-buffer watermark (on_writable) and the transport's
// loss-detection behaviour under queueing — the mechanisms the BitTorrent
// client's upload pacing depends on.
#include <gtest/gtest.h>

#include <vector>

#include "sockets/socket.hpp"

namespace p2plab::sockets {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }
CidrBlock cidr(const char* text) { return *CidrBlock::parse(text); }

class BackpressureTest : public ::testing::Test {
 protected:
  BackpressureTest() {
    hostA = &network.add_host("node1", ip("192.168.38.1"));
    hostB = &network.add_host("node2", ip("192.168.38.2"));
    vnA = std::make_unique<vnode::VirtualNode>(*hostA, 1, ip("10.0.0.1"));
    vnB = std::make_unique<vnode::VirtualNode>(*hostB, 2, ip("10.0.0.51"));
    procA = std::make_unique<vnode::Process>(*vnA);
    procB = std::make_unique<vnode::Process>(*vnB);
    apiA = std::make_unique<SocketApi>(mgr, *procA);
    apiB = std::make_unique<SocketApi>(mgr, *procB);
  }

  void shape_uplink_a(Bandwidth bw) {
    const auto pipe = hostA->firewall().create_pipe(
        {.bandwidth = bw, .delay = Duration::ms(30),
         .queue_limit = DataSize::mib(8)});
    hostA->firewall().add_rule({.number = 100, .src = cidr("10.0.0.1/32"),
                                .dst = CidrBlock::any(),
                                .dir = ipfw::RuleDir::kOut,
                                .action = ipfw::RuleAction::kPipe,
                                .pipe = pipe});
  }

  Message block() {
    Message m;
    m.type = 9;
    m.size = DataSize::kib(16);
    return m;
  }

  sim::Simulation sim;
  net::Network network{sim, Rng{1}};
  SocketManager mgr{network};
  net::Host* hostA = nullptr;
  net::Host* hostB = nullptr;
  std::unique_ptr<vnode::VirtualNode> vnA;
  std::unique_ptr<vnode::VirtualNode> vnB;
  std::unique_ptr<vnode::Process> procA;
  std::unique_ptr<vnode::Process> procB;
  std::unique_ptr<SocketApi> apiA;
  std::unique_ptr<SocketApi> apiB;
};

TEST_F(BackpressureTest, UnsentBytesTracksLifecycle) {
  shape_uplink_a(Bandwidth::kbps(128));
  StreamSocketPtr client;
  auto listener = apiB->listen(6881, [](StreamSocketPtr) {});
  apiA->connect(ip("10.0.0.51"), 6881,
                [&](StreamSocketPtr s) { client = s; });
  sim.run();
  ASSERT_TRUE(client);
  EXPECT_EQ(client->unsent_bytes(), 0u);
  client->send(block());
  // In flight (pending or unacked) until the remote acks.
  EXPECT_EQ(client->unsent_bytes(), DataSize::kib(16).count_bytes());
  sim.run();
  EXPECT_EQ(client->unsent_bytes(), 0u);
}

TEST_F(BackpressureTest, OnWritableFiresAsBufferDrains) {
  shape_uplink_a(Bandwidth::kbps(256));
  StreamSocketPtr client;
  auto listener = apiB->listen(6881, [](StreamSocketPtr) {});
  apiA->connect(ip("10.0.0.51"), 6881,
                [&](StreamSocketPtr s) { client = s; });
  sim.run();
  ASSERT_TRUE(client);

  // Producer: keep <= 2 blocks in the socket; send 10 total.
  int sent = 0;
  std::vector<double> send_times;
  auto pump = [&] {
    while (sent < 10 &&
           client->unsent_bytes() <= DataSize::kib(16).count_bytes()) {
      client->send(block());
      send_times.push_back(sim.now().to_seconds());
      ++sent;
    }
  };
  client->on_writable(DataSize::kib(16), pump);
  pump();
  EXPECT_EQ(sent, 2);  // watermark admits two blocks up front
  sim.run();
  EXPECT_EQ(sent, 10);
  // Sends were spread over the transfer, not issued in one burst.
  EXPECT_GT(send_times.back() - send_times.front(), 3.0);
}

TEST_F(BackpressureTest, AckSilenceTriggersRetransmitOnLoss) {
  // 30% loss: progress-gated RTO must still recover everything, while a
  // clean link (same test body, no loss) never retransmits.
  const auto lossy = hostA->firewall().create_pipe(
      {.bandwidth = Bandwidth::mbps(10), .delay = Duration::ms(10),
       .loss_rate = 0.3, .queue_limit = DataSize::mib(8)});
  hostA->firewall().add_rule({.number = 100, .src = cidr("10.0.0.1/32"),
                              .dst = CidrBlock::any(),
                              .dir = ipfw::RuleDir::kOut,
                              .action = ipfw::RuleAction::kPipe,
                              .pipe = lossy});
  int received = 0;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) {
    s->on_message([&](Message&&) { ++received; });
  });
  apiA->connect(ip("10.0.0.51"), 6881, [&](StreamSocketPtr s) {
    for (int i = 0; i < 50; ++i) s->send(block());
  });
  sim.run();
  EXPECT_EQ(received, 50);
}

TEST_F(BackpressureTest, NoSpuriousRetransmissionUnderQueueing) {
  // A slow uplink queues multiple seconds of data; the progress-gated RTO
  // must not fire while acks keep arriving. Spurious retransmits would
  // show up as duplicate wire bytes at the network layer.
  shape_uplink_a(Bandwidth::kbps(128));
  int received = 0;
  auto listener = apiB->listen(6881, [&](StreamSocketPtr s) {
    s->on_message([&](Message&&) { ++received; });
  });
  apiA->connect(ip("10.0.0.51"), 6881, [&](StreamSocketPtr s) {
    for (int i = 0; i < 12; ++i) s->send(block());  // ~12 s of backlog
  });
  sim.run();
  EXPECT_EQ(received, 12);
  // Wire accounting: payload sent once. Sent bytes counter would double on
  // retransmission (it re-counts), so equality proves no spurious RTO.
  const std::uint64_t payload = 12 * DataSize::kib(16).count_bytes();
  std::uint64_t delivered_data = 0;
  (void)delivered_data;
  // All data packets that entered the network carried exactly `payload`
  // bytes of application data plus headers; compare against stats.
  EXPECT_LT(network.stats().bytes_sent,
            payload + 12 * 40 + 20000 /* control segments */);
}

}  // namespace
}  // namespace p2plab::sockets
