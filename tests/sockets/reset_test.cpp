// RST semantics and crash teardown: connection-refused, reset of
// established connections after a vnode crash, silent local teardown, and
// retransmit-timer hygiene (the event queue drains after a crash).
#include "sockets/socket.hpp"

#include <gtest/gtest.h>

#include <string>

#include "metrics/registry.hpp"

namespace p2plab::sockets {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }

class ResetTest : public ::testing::Test {
 protected:
  ResetTest() {
    hostA = &network.add_host("node1", ip("192.168.38.1"));
    hostB = &network.add_host("node2", ip("192.168.38.2"));
    vnA = std::make_unique<vnode::VirtualNode>(*hostA, 1, ip("10.0.0.1"));
    vnB = std::make_unique<vnode::VirtualNode>(*hostB, 2, ip("10.0.0.51"));
    procA = std::make_unique<vnode::Process>(*vnA);
    procB = std::make_unique<vnode::Process>(*vnB);
    apiA = std::make_unique<SocketApi>(mgr, *procA);
    apiB = std::make_unique<SocketApi>(mgr, *procB);
    mgr.bind_metrics(registry);
  }

  Message text_message(const std::string& text) {
    return Message{.type = 1,
                   .size = DataSize::bytes(text.size()),
                   .body = std::make_shared<const std::string>(text)};
  }

  /// Establish a connection A -> B:6881 and return both ends.
  void establish(StreamSocketPtr& client, StreamSocketPtr& server) {
    listener =
        apiB->listen(6881, [&](StreamSocketPtr s) { server = s; });
    apiA->connect(ip("10.0.0.51"), 6881,
                  [&](StreamSocketPtr s) { client = s; });
    sim.run();
    ASSERT_TRUE(client != nullptr);
    ASSERT_TRUE(server != nullptr);
  }

  sim::Simulation sim;
  net::Network network{sim, Rng{1}};
  SocketManager mgr{network};
  metrics::Registry registry;
  net::Host* hostA = nullptr;
  net::Host* hostB = nullptr;
  std::unique_ptr<vnode::VirtualNode> vnA;
  std::unique_ptr<vnode::VirtualNode> vnB;
  std::unique_ptr<vnode::Process> procA;
  std::unique_ptr<vnode::Process> procB;
  std::unique_ptr<SocketApi> apiA;
  std::unique_ptr<SocketApi> apiB;
  ListenerPtr listener;
};

TEST_F(ResetTest, ConnectToClosedPortIsRefusedFast) {
  // No listener at :7000 — the SYN meets an RST (ECONNREFUSED), not five
  // SYN retries and a timeout.
  bool connected = false;
  bool failed = false;
  apiA->connect(ip("10.0.0.51"), 7000,
                [&](StreamSocketPtr) { connected = true; },
                [&] { failed = true; });
  sim.run();
  EXPECT_FALSE(connected);
  EXPECT_TRUE(failed);
  // Refusal arrives in ~1 RTT; SYN-retry exhaustion would take minutes.
  EXPECT_LT(sim.now(), SimTime::zero() + Duration::sec(5));
  EXPECT_GE(registry.value("sockets.rsts_sent"), 1.0);
  // Refusal during connect counts as a failed connect (ECONNREFUSED), not
  // a reset of an established connection.
  EXPECT_GE(registry.value("sockets.connects_failed"), 1.0);
}

TEST_F(ResetTest, CrashResetsEstablishedPeer) {
  StreamSocketPtr client, server;
  establish(client, server);
  bool server_closed = false;
  server->on_close([&] { server_closed = true; });
  bool client_closed = false;
  client->on_close([&] { client_closed = true; });

  // Vnode A dies: its endpoints vanish silently.
  mgr.abort_endpoints_of(ip("10.0.0.1"));
  EXPECT_GE(registry.value("sockets.crash_aborts"), 1.0);
  // The dead process observes nothing — ECONNRESET is for the survivor.
  EXPECT_FALSE(client_closed);

  // B transmits into the void; A's host answers the endpoint-less segment
  // with an RST and B surfaces ECONNRESET via on_close.
  server->send(text_message("are you there?"));
  sim.run();
  EXPECT_TRUE(server_closed);
  EXPECT_FALSE(client_closed);
  EXPECT_GE(registry.value("sockets.resets"), 1.0);
}

TEST_F(ResetTest, CrashCancelsPendingRetransmitTimers) {
  StreamSocketPtr client, server;
  establish(client, server);
  // Make B unreachable so A's send sits in retransmission.
  network.detach_address(ip("10.0.0.51"));
  client->send(text_message("lost"));
  sim.run_until(sim.now() + Duration::sec(10));  // at least one RTO fired
  EXPECT_GT(registry.value("sockets.retransmits"), 0.0);

  // A crashes with the retransmit timer armed. Teardown must cancel it:
  // with B also gone, nothing else is live, so the queue drains to zero
  // instead of ticking a dead socket's timer for another 11 backoffs.
  mgr.abort_endpoints_of(ip("10.0.0.1"));
  listener->stop_accepting();
  listener.reset();
  server.reset();
  sim.run_until(sim.now() + Duration::sec(2));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST_F(ResetTest, RtoExhaustionSurfacesEtimedoutLocally) {
  StreamSocketPtr client, server;
  establish(client, server);
  bool client_closed = false;
  client->on_close([&] { client_closed = true; });

  // B's address disappears (crash where the address never returns): no
  // RST will ever arrive, so A must give up via retransmit exhaustion.
  mgr.abort_endpoints_of(ip("10.0.0.51"));
  network.detach_address(ip("10.0.0.51"));
  client->send(text_message("anyone home?"));
  sim.run();
  EXPECT_TRUE(client_closed);
  EXPECT_GE(registry.value("sockets.aborts"), 1.0);
  // Exhaustion respects the RTO schedule: well past the first timeouts,
  // bounded by max_retransmit_timeouts * max_rto.
  const StreamConfig& cfg = mgr.stream_config();
  EXPECT_GT(sim.now(), SimTime::zero() + Duration::sec(10));
  EXPECT_LT(sim.now(),
            SimTime::zero() +
                cfg.max_rto * static_cast<std::int64_t>(
                                  cfg.max_retransmit_timeouts + 1));
}

TEST_F(ResetTest, ListenerDiesWithItsVnode) {
  StreamSocketPtr client, server;
  establish(client, server);
  mgr.abort_endpoints_of(ip("10.0.0.51"));  // B (the listener side) dies

  // New connections to the dead listener's port are refused, not accepted.
  bool connected = false;
  bool failed = false;
  apiA->connect(ip("10.0.0.51"), 6881,
                [&](StreamSocketPtr) { connected = true; },
                [&] { failed = true; });
  sim.run();
  EXPECT_FALSE(connected);
  EXPECT_TRUE(failed);
  EXPECT_EQ(listener->connection_count(), 0u);
}

TEST_F(ResetTest, ReattachedAddressRefusesStaleConnections) {
  // Crash-and-rejoin: the address comes back but the old endpoints are
  // gone — a surviving peer's traffic meets an RST from the reborn node,
  // not silence and not delivery to a ghost socket.
  StreamSocketPtr client, server;
  establish(client, server);
  bool server_closed = false;
  server->on_close([&] { server_closed = true; });

  mgr.abort_endpoints_of(ip("10.0.0.1"));
  network.detach_address(ip("10.0.0.1"));
  sim.run();
  network.reattach_address(ip("10.0.0.1"), *hostA);

  server->send(text_message("welcome back?"));
  sim.run();
  EXPECT_TRUE(server_closed);
}

}  // namespace
}  // namespace p2plab::sockets
