// Parallel-engine determinism and lifecycle tests.
//
// The engine's contract (engine/engine.hpp) is that the shard partition is
// invisible: a K-shard run replays the 1-shard engine run bit for bit. The
// golden-trace test drives the paper's Figure 8 scenario (BitTorrent swarm
// on folded physical nodes; client count scaled down for CI, overridable
// via P2PLAB_DETERMINISM_CLIENTS up to the full 160) under K = 1, 2, 4 and
// requires byte-identical trace JSONL, identical completion times and an
// identical dispatched-event count.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bittorrent/swarm.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "metrics/registry.hpp"

namespace p2plab {
namespace {

SimTime at_sec(double s) { return SimTime::zero() + Duration::seconds(s); }

std::size_t scenario_clients() {
  if (const char* env = std::getenv("P2PLAB_DETERMINISM_CLIENTS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 10;  // CI default; 160 reproduces Figure 8 at full scale
}

bt::SwarmConfig fig8_swarm(std::size_t clients) {
  bt::SwarmConfig config;
  config.file_size = DataSize::mib(1);
  config.seeders = 2;
  config.clients = clients;
  config.start_interval = Duration::sec(2);
  config.verify_hashes = true;
  config.max_duration = Duration::sec(4000);
  return config;
}

struct RunOutput {
  std::vector<double> completion_sec;
  std::vector<std::string> trace;
  std::uint64_t dispatched = 0;
  double merged_dispatched = 0;  // via the master registry (merge_from path)
};

RunOutput run_fig8(std::size_t shards, std::size_t clients,
                   bool profile = false, bool tcp = false) {
  core::PlatformConfig pc;
  pc.physical_nodes = 8;
  pc.seed = 7;
  pc.shards = shards;
  if (tcp) pc.stream.transport = sockets::TransportModel::kTcp;
  const bt::SwarmConfig config = fig8_swarm(clients);
  core::Platform platform(topology::homogeneous_dsl(bt::swarm_vnodes(config)),
                          pc);
  platform.enable_tracing(1 << 18);
  if (profile) platform.enable_profiling();
  metrics::Registry registry;
  bt::Swarm swarm(platform, config);
  swarm.bind_metrics(registry);
  swarm.run();
  EXPECT_TRUE(swarm.all_complete()) << shards << " shard(s)";
  EXPECT_EQ(platform.trace_dropped(), 0u)
      << "ring wrapped: the byte-identity guarantee needs a larger capacity";
  if (profile) {
    // Guard against vacuous identity: the profiled run must have profiled.
    std::uint64_t recorded = 0;
    for (std::size_t s = 0; s < platform.profiler().shard_count(); ++s) {
      recorded += platform.profiler().shard_ring(s).total();
    }
    EXPECT_GT(recorded, 0u) << shards << " shard(s)";
  }
  RunOutput out;
  out.completion_sec = swarm.completion_times_sec();
  out.trace = platform.trace_lines();
  out.dispatched = platform.dispatched_events();
  out.merged_dispatched = registry.value("sim.events.dispatched");
  return out;
}

TEST(EngineDeterminism, GoldenTraceIsShardCountInvariant) {
  const std::size_t clients = scenario_clients();
  const RunOutput golden = run_fig8(1, clients);
  ASSERT_FALSE(golden.trace.empty());
  ASSERT_EQ(golden.completion_sec.size(), clients);

  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    const RunOutput run = run_fig8(k, clients);
    EXPECT_EQ(golden.completion_sec, run.completion_sec)
        << "completion times diverged at K=" << k;
    EXPECT_EQ(golden.dispatched, run.dispatched)
        << "event counts diverged at K=" << k;
    ASSERT_EQ(golden.trace.size(), run.trace.size())
        << "trace lengths diverged at K=" << k;
    for (std::size_t i = 0; i < golden.trace.size(); ++i) {
      ASSERT_EQ(golden.trace[i], run.trace[i])
          << "first trace divergence at K=" << k << ", line " << i;
    }
  }
}

TEST(EngineDeterminism, TcpTransportIsShardCountInvariant) {
  // The congestion model keeps per-connection state (cwnd, dup-ack counts,
  // recovery windows) whose updates are driven by ack arrival order — the
  // exact thing the shard partition must not perturb. Same golden-trace
  // bar as the flow model: K = 2, 4 replay K = 1 bit for bit.
  const std::size_t clients = scenario_clients();
  const RunOutput golden =
      run_fig8(1, clients, /*profile=*/false, /*tcp=*/true);
  ASSERT_FALSE(golden.trace.empty());
  ASSERT_EQ(golden.completion_sec.size(), clients);

  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    const RunOutput run = run_fig8(k, clients, /*profile=*/false, /*tcp=*/true);
    EXPECT_EQ(golden.completion_sec, run.completion_sec)
        << "completion times diverged at K=" << k << " under tcp";
    EXPECT_EQ(golden.dispatched, run.dispatched)
        << "event counts diverged at K=" << k << " under tcp";
    ASSERT_EQ(golden.trace.size(), run.trace.size())
        << "trace lengths diverged at K=" << k << " under tcp";
    for (std::size_t i = 0; i < golden.trace.size(); ++i) {
      ASSERT_EQ(golden.trace[i], run.trace[i])
          << "first trace divergence at K=" << k << " under tcp, line " << i;
    }
  }
}

TEST(EngineDeterminism, ProfilingIsInvisibleToSimulatedState) {
  // The profiler's whole contract: wall-clock observation only. A profiled
  // run at any K must replay the unprofiled K=1 run bit for bit — trace
  // bytes, completion times and event count — while still having actually
  // profiled (samples recorded).
  const std::size_t clients = scenario_clients();
  const RunOutput golden = run_fig8(1, clients, /*profile=*/false);
  ASSERT_FALSE(golden.trace.empty());

  for (const std::size_t k : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    const RunOutput run = run_fig8(k, clients, /*profile=*/true);
    EXPECT_EQ(golden.completion_sec, run.completion_sec)
        << "completion times diverged with profiling at K=" << k;
    EXPECT_EQ(golden.dispatched, run.dispatched)
        << "event counts diverged with profiling at K=" << k;
    ASSERT_EQ(golden.trace.size(), run.trace.size())
        << "trace lengths diverged with profiling at K=" << k;
    for (std::size_t i = 0; i < golden.trace.size(); ++i) {
      ASSERT_EQ(golden.trace[i], run.trace[i])
          << "first trace divergence with profiling at K=" << k
          << ", line " << i;
    }
  }
}

TEST(EngineDeterminism, MergedRegistryMatchesAggregateCounters) {
  const RunOutput run = run_fig8(4, 6);
  EXPECT_GT(run.dispatched, 0u);
  EXPECT_DOUBLE_EQ(run.merged_dispatched,
                   static_cast<double>(run.dispatched));
}

TEST(EnginePlatform, DeadlineStopsOnTimeAndResumes) {
  core::PlatformConfig pc;
  pc.physical_nodes = 4;
  pc.shards = 2;
  const bt::SwarmConfig config = fig8_swarm(4);
  core::Platform platform(topology::homogeneous_dsl(bt::swarm_vnodes(config)),
                          pc);
  bt::Swarm swarm(platform, config);

  EXPECT_EQ(platform.run(at_sec(10)), core::Platform::RunResult::kDeadline);
  EXPECT_EQ(platform.now(), at_sec(10));
  EXPECT_FALSE(swarm.all_complete());

  // The engine resumes exactly where it stopped: finishing from here must
  // behave like one uninterrupted run.
  swarm.run();
  EXPECT_TRUE(swarm.all_complete());
  EXPECT_GT(platform.now(), at_sec(10));
}

TEST(EnginePlatform, PredicateStopFiresOnCheckGrid) {
  core::PlatformConfig pc;
  pc.physical_nodes = 2;
  pc.shards = 2;
  const bt::SwarmConfig config = fig8_swarm(2);
  core::Platform platform(topology::homogeneous_dsl(bt::swarm_vnodes(config)),
                          pc);
  bt::Swarm swarm(platform, config);
  const auto result = platform.run(
      at_sec(3600), [&platform] { return platform.now() >= at_sec(20); },
      Duration::sec(5));
  EXPECT_EQ(result, core::Platform::RunResult::kPredicate);
  // Stopped at a multiple of the check interval, at or after the trigger.
  EXPECT_GE(platform.now(), at_sec(20));
  EXPECT_LT(platform.now(), at_sec(26));
}

TEST(EngineChurn, CrashAndRejoinAcrossShards) {
  // A client on the last shard crashes and rejoins while the tracker lives
  // on the first: the teardown (socket aborts, address withdrawal) happens
  // on the victim's shard, and its peers discover the loss over the
  // cross-shard fabric.
  const bt::SwarmConfig config = fig8_swarm(6);  // 9 vnodes
  core::PlatformConfig pc;
  pc.physical_nodes = 3;
  pc.shards = 3;
  core::Platform platform(topology::homogeneous_dsl(bt::swarm_vnodes(config)),
                          pc);
  bt::Swarm swarm(platform, config);
  const std::size_t first_client_vnode = 1 + config.seeders;
  const std::size_t victim = config.clients - 1;  // last pnode, last shard
  ASSERT_NE(platform.shard_of_pnode(
                platform.pnode_of_vnode(first_client_vnode + victim)),
            platform.shard_of_pnode(0));

  fault::FaultPlan plan;
  plan.crash_and_rejoin(first_client_vnode + victim, at_sec(25),
                        Duration::sec(40));
  fault::FaultInjector injector(platform, plan);
  injector.set_node_hooks(fault::NodeHooks{
      .on_crash = [&](std::size_t v) {
        swarm.client(v - first_client_vnode).crash();
      },
      .on_leave = nullptr,
      .on_rejoin = [&](std::size_t v) {
        swarm.client(v - first_client_vnode).start();
      }});
  injector.arm();
  swarm.run();
  EXPECT_TRUE(swarm.all_complete());
  EXPECT_EQ(injector.stats().unrecovered(), 0u);
}

}  // namespace
}  // namespace p2plab
