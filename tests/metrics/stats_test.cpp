#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace p2plab::metrics {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleSampleHasZeroVariance) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Distribution, QuantilesOfKnownData) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.add(i);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 100.0);
  EXPECT_NEAR(d.median(), 50.5, 1e-9);
  EXPECT_NEAR(d.quantile(0.25), 25.75, 1e-9);
  EXPECT_NEAR(d.quantile(0.99), 99.01, 1e-9);
}

TEST(Distribution, CdfStepFunction) {
  Distribution d;
  for (double v : {1.0, 2.0, 2.0, 3.0}) d.add(v);
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(2.5), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(99.0), 1.0);
}

TEST(Distribution, CdfPointsAreMonotone) {
  Distribution d;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) d.add(rng.normal(0, 1));
  const auto points = d.cdf_points();
  ASSERT_EQ(points.size(), 500u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].first, points[i].first);
    EXPECT_LT(points[i - 1].second, points[i].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(Distribution, AddAfterQueryResorts) {
  Distribution d;
  d.add(5.0);
  EXPECT_DOUBLE_EQ(d.median(), 5.0);
  d.add(1.0);
  d.add(9.0);
  EXPECT_DOUBLE_EQ(d.median(), 5.0);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 9.0);
}

// Property: quantile is monotone in q and bounded by min/max.
TEST(Distribution, QuantileMonotoneProperty) {
  Distribution d;
  Rng rng(2);
  for (int i = 0; i < 300; ++i) d.add(rng.uniform_double(-10, 10));
  double prev = d.quantile(0.0);
  EXPECT_DOUBLE_EQ(prev, d.min());
  for (double q = 0.05; q <= 1.0 + 1e-12; q += 0.05) {
    const double cur = d.quantile(std::min(q, 1.0));
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(d.quantile(1.0), d.max());
}

// Property: mean of Distribution matches Summary on identical data.
TEST(Distribution, MeanMatchesSummary) {
  Distribution d;
  Summary s;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.exponential(4.0);
    d.add(v);
    s.add(v);
  }
  EXPECT_NEAR(d.mean(), s.mean(), 1e-9);
}

}  // namespace
}  // namespace p2plab::metrics
