#include "metrics/health.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/time.hpp"
#include "metrics/registry.hpp"
#include "sim/simulation.hpp"

namespace p2plab::metrics {
namespace {

std::string report_to_string(const HealthMonitor& monitor) {
  std::FILE* tmp = std::tmpfile();
  monitor.print_report(tmp);
  std::rewind(tmp);
  std::string out;
  char buf[256];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, tmp)) > 0) out.append(buf, n);
  std::fclose(tmp);
  return out;
}

TEST(HealthMonitor, SamplesPeriodicallyPlusFinal) {
  sim::Simulation sim;
  Registry reg;
  HealthMonitor monitor({.period = Duration::sec(1),
                         .csv_name = "health_test",
                         .heartbeat_wall_seconds = 0.0});
  monitor.start(sim, reg);
  sim.run_until(SimTime::zero() + Duration::ms(3500));
  EXPECT_EQ(monitor.samples(), 3u);  // ticks at t = 1, 2, 3
  monitor.stop();
  EXPECT_EQ(monitor.samples(), 4u);  // + final sample
  EXPECT_FALSE(monitor.running());
}

TEST(HealthMonitor, RestartAccumulatesAcrossRuns) {
  sim::Simulation sim;
  Registry reg;
  Counter tick = reg.counter("test.ticks");
  HealthMonitor monitor({.period = Duration::sec(1),
                         .csv_name = "health_restart_test",
                         .tracked = {"test.ticks"},
                         .heartbeat_wall_seconds = 0.0});

  monitor.set_label("run=1");
  monitor.start(sim, reg);
  sim.schedule_after(Duration::ms(500), [&tick] { tick.inc(); });
  sim.run_until(SimTime::zero() + Duration::ms(1500));
  monitor.stop();
  const std::uint64_t first_events = monitor.events_observed();
  EXPECT_GE(first_events, 2u);  // user event + at least one sampler tick

  monitor.set_label("run=2");
  monitor.start(sim, reg);
  sim.run_until(SimTime::zero() + Duration::ms(3500));
  monitor.stop();
  EXPECT_GT(monitor.events_observed(), first_events);
  EXPECT_GE(monitor.samples(), 4u);
}

TEST(HealthMonitor, PrintReportDumpsRegistry) {
  sim::Simulation sim;
  Registry reg;
  Counter c = reg.counter("test.answer");
  c.inc(42);
  HealthMonitor monitor({.period = Duration::sec(1),
                         .csv_name = "health_report_test",
                         .heartbeat_wall_seconds = 0.0});
  monitor.start(sim, reg);
  sim.run_until(SimTime::zero() + Duration::ms(1500));
  monitor.stop();

  // After stop() the monitor reports the last run's registry.
  const std::string report = report_to_string(monitor);
  EXPECT_NE(report.find("# --- metrics report ---"), std::string::npos);
  EXPECT_NE(report.find("# test.answer = 42"), std::string::npos);
  EXPECT_NE(report.find("# --- end metrics report ---"), std::string::npos);
}

TEST(HealthMonitor, TimelineLandsInResultsDir) {
  char dir_template[] = "/tmp/p2plab_health_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  setenv("P2PLAB_RESULTS_DIR", dir_template, 1);
  {
    sim::Simulation sim;
    Registry reg;
    Counter c = reg.counter("test.val");
    c.inc(7);
    HealthMonitor monitor({.period = Duration::sec(1),
                           .csv_name = "health_csv_test",
                           .tracked = {"test.val"},
                           .heartbeat_wall_seconds = 0.0});
    monitor.set_label("fold=2");
    monitor.start(sim, reg);
    sim.run_until(SimTime::zero() + Duration::ms(2500));
    monitor.stop();
  }  // CsvWriter flushes on destruction
  unsetenv("P2PLAB_RESULTS_DIR");

  std::ifstream file(std::string(dir_template) + "/health_csv_test.csv");
  ASSERT_TRUE(file.good());
  std::string header;
  ASSERT_TRUE(std::getline(file, header));
  EXPECT_NE(header.find("label"), std::string::npos);
  EXPECT_NE(header.find("sim_s_per_wall_s"), std::string::npos);
  EXPECT_NE(header.find("test.val"), std::string::npos);
  std::string row;
  ASSERT_TRUE(std::getline(file, row));
  EXPECT_EQ(row.rfind("fold=2,", 0), 0u);
  EXPECT_NE(row.find("7"), std::string::npos);  // tracked column value
}

}  // namespace
}  // namespace p2plab::metrics
