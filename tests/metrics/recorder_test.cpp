#include "metrics/recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/time.hpp"

namespace p2plab::metrics {
namespace {

SimTime at_ms(std::int64_t ms) { return SimTime::zero() + Duration::ms(ms); }

std::string flush_to_string(const FlightRecorder& rec) {
  std::FILE* tmp = std::tmpfile();
  rec.flush(tmp);
  std::rewind(tmp);
  std::string out;
  char buf[256];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, tmp)) > 0) out.append(buf, n);
  std::fclose(tmp);
  return out;
}

TEST(FlightRecorder, RecordsAndFlushesJsonl) {
  FlightRecorder rec(8);
  rec.record(at_ms(1500), "bt", "torrent_complete",
             {{"ip", "10.0.0.1"}, {"secs", 1.5}});
  EXPECT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.recorded(), 1u);
  EXPECT_EQ(rec.dropped(), 0u);
  const std::string out = flush_to_string(rec);
  EXPECT_EQ(out,
            "{\"t\":1.500000000,\"subsystem\":\"bt\","
            "\"kind\":\"torrent_complete\",\"ip\":\"10.0.0.1\","
            "\"secs\":1.5}\n");
}

TEST(FlightRecorder, RingWrapsOldestFirst) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record(at_ms(i), "t", "e", {{"i", i}});
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  // Held events are the newest four, flushed oldest first: i = 6, 7, 8, 9.
  const std::string out = flush_to_string(rec);
  std::stringstream lines(out);
  std::string line;
  int expect = 6;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"i\":" + std::to_string(expect)),
              std::string::npos)
        << line;
    ++expect;
  }
  EXPECT_EQ(expect, 10);
}

TEST(FlightRecorder, ClearEmpties) {
  FlightRecorder rec(4);
  rec.record(at_ms(0), "t", "e");
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(flush_to_string(rec), "");
}

TEST(FlightRecorder, EscapesJson) {
  EXPECT_EQ(FlightRecorder::escape_json("plain"), "plain");
  EXPECT_EQ(FlightRecorder::escape_json("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(FlightRecorder::escape_json("x\n\r\ty"), "x\\n\\r\\ty");
  EXPECT_EQ(FlightRecorder::escape_json(std::string("\x01", 1)), "\\u0001");
}

TEST(FlightRecorder, EscapedFieldsSurviveFlush) {
  FlightRecorder rec(4);
  rec.record(at_ms(0), "sub\"sys", "kind\n", {{"k\"ey", "v\\al"}});
  const std::string out = flush_to_string(rec);
  EXPECT_EQ(out,
            "{\"t\":0.000000000,\"subsystem\":\"sub\\\"sys\","
            "\"kind\":\"kind\\n\",\"k\\\"ey\":\"v\\\\al\"}\n");
}

TEST(FlightRecorder, TraceMacroOnlyRecordsWhenActive) {
  FlightRecorder rec(4);
  int evaluations = 0;
  auto payload = [&evaluations] {
    ++evaluations;
    return std::string("x");
  };

  P2PLAB_TRACE(at_ms(0), "t", "e", {{"k", payload()}});
  EXPECT_EQ(evaluations, 0);  // inactive: payload not evaluated
  EXPECT_EQ(rec.size(), 0u);

  FlightRecorder::set_active(&rec);
  P2PLAB_TRACE(at_ms(0), "t", "e", {{"k", payload()}});
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(rec.size(), 1u);
  FlightRecorder::set_active(nullptr);
}

TEST(FlightRecorder, ActiveClearedOnDestruction) {
  {
    FlightRecorder rec(4);
    FlightRecorder::set_active(&rec);
    EXPECT_EQ(FlightRecorder::active(), &rec);
  }
  EXPECT_EQ(FlightRecorder::active(), nullptr);
}

TEST(FlightRecorder, FlushToResultsDir) {
  char dir_template[] = "/tmp/p2plab_rec_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  setenv("P2PLAB_RESULTS_DIR", dir_template, 1);
  FlightRecorder rec(4);
  rec.record(at_ms(0), "t", "e");
  EXPECT_TRUE(rec.flush_to_results("trace_test.jsonl"));
  unsetenv("P2PLAB_RESULTS_DIR");

  std::ifstream file(std::string(dir_template) + "/trace_test.jsonl");
  ASSERT_TRUE(file.good());
  std::string line;
  ASSERT_TRUE(std::getline(file, line));
  EXPECT_NE(line.find("\"subsystem\":\"t\""), std::string::npos);

  EXPECT_FALSE(rec.flush_to_results("x.jsonl"));  // env unset
}

}  // namespace
}  // namespace p2plab::metrics
