#include "metrics/registry.hpp"

#include <gtest/gtest.h>

#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace p2plab::metrics {
namespace {

TEST(Registry, CounterSemantics) {
  Registry reg;
  Counter c = reg.counter("a.count");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_DOUBLE_EQ(reg.value("a.count"), 42.0);
}

TEST(Registry, GaugeSemantics) {
  Registry reg;
  Gauge g = reg.gauge("a.level");
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(reg.value("a.level"), 2.0);
}

TEST(Registry, HistogramSemantics) {
  Registry reg;
  Histogram h = reg.histogram("a.dist", {1.0, 10.0});
  h.record(0.5);   // bucket 0 (<= 1)
  h.record(5.0);   // bucket 1 (<= 10)
  h.record(100.0); // bucket 2 (+inf)
  const HistogramData& d = h.data();
  EXPECT_EQ(d.count, 3u);
  ASSERT_EQ(d.buckets.size(), 3u);
  EXPECT_EQ(d.buckets[0], 1u);
  EXPECT_EQ(d.buckets[1], 1u);
  EXPECT_EQ(d.buckets[2], 1u);
  EXPECT_DOUBLE_EQ(d.min, 0.5);
  EXPECT_DOUBLE_EQ(d.max, 100.0);
  EXPECT_DOUBLE_EQ(d.mean(), 105.5 / 3.0);
}

TEST(Registry, SameNameSharesCell) {
  // The aggregation mechanism: 180 firewalls resolving "ipfw.rules_scanned"
  // all increment one cell.
  Registry reg;
  Counter a = reg.counter("shared");
  Counter b = reg.counter("shared");
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
}

TEST(Registry, UnboundHandlesAreSafe) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(1.0);
  h.record(1.0);  // all land in the shared sinks; no crash, no registry
}

TEST(Registry, SnapshotSortedByName) {
  Registry reg;
  reg.counter("zz.last");
  reg.gauge("aa.first");
  reg.histogram("mm.mid", {1.0});
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "aa.first");
  EXPECT_EQ(snap[1].name, "mm.mid");
  EXPECT_EQ(snap[2].name, "zz.last");
  EXPECT_EQ(snap[1].kind, MetricKind::kHistogram);
  ASSERT_NE(snap[1].hist, nullptr);
  EXPECT_EQ(snap[0].hist, nullptr);
}

TEST(Registry, ValueOfUnknownNameIsZero) {
  Registry reg;
  EXPECT_DOUBLE_EQ(reg.value("no.such.metric"), 0.0);
}

TEST(Registry, ResetZeroesButKeepsHandles) {
  Registry reg;
  Counter c = reg.counter("n");
  Histogram h = reg.histogram("d", {1.0});
  c.inc(7);
  h.record(3.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.data().count, 0u);
  c.inc();  // handle still points at live storage
  EXPECT_DOUBLE_EQ(reg.value("n"), 1.0);
}

TEST(Registry, SimulationKernelMetricsMatchDispatchCount) {
  sim::Simulation sim;
  Registry reg;
  sim.bind_metrics(reg);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(Duration::ms(i), [&fired] { ++fired; });
  }
  const sim::EventId victim =
      sim.schedule_after(Duration::sec(1), [&fired] { ++fired; });
  EXPECT_TRUE(sim.cancel(victim));
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(reg.value("sim.events.scheduled"), 11.0);
  EXPECT_DOUBLE_EQ(reg.value("sim.events.dispatched"),
                   static_cast<double>(sim.dispatched_events()));
  EXPECT_DOUBLE_EQ(reg.value("sim.events.cancelled"), 1.0);
  EXPECT_DOUBLE_EQ(reg.value("sim.queue.depth"),
                   static_cast<double>(sim.pending_events()));
}

}  // namespace
}  // namespace p2plab::metrics
