#include "metrics/timeseries.hpp"

#include <gtest/gtest.h>

namespace p2plab::metrics {
namespace {

SimTime at_sec(int s) { return SimTime::zero() + Duration::sec(s); }

TEST(TimeSeries, ValueAtStepSemantics) {
  TimeSeries ts("pct");
  ts.add(at_sec(10), 1.0);
  ts.add(at_sec(20), 2.0);
  ts.add(at_sec(30), 3.0);
  EXPECT_DOUBLE_EQ(ts.value_at(at_sec(5)), 0.0);   // before first
  EXPECT_DOUBLE_EQ(ts.value_at(at_sec(10)), 1.0);  // exactly at sample
  EXPECT_DOUBLE_EQ(ts.value_at(at_sec(15)), 1.0);  // holds until next
  EXPECT_DOUBLE_EQ(ts.value_at(at_sec(20)), 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(at_sec(99)), 3.0);  // holds after last
}

TEST(TimeSeries, ValueAtCustomBefore) {
  TimeSeries ts;
  ts.add(at_sec(10), 5.0);
  EXPECT_DOUBLE_EQ(ts.value_at(at_sec(1), -1.0), -1.0);
}

TEST(TimeSeries, EmptySeries) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.value_at(at_sec(10)), 0.0);
}

TEST(TimeSeries, MetadataAccessors) {
  TimeSeries ts("node50");
  ts.add(at_sec(1), 10.0);
  ts.add(at_sec(2), 20.0);
  EXPECT_EQ(ts.name(), "node50");
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.first_time(), at_sec(1));
  EXPECT_EQ(ts.last_time(), at_sec(2));
  EXPECT_DOUBLE_EQ(ts.last_value(), 20.0);
}

TEST(TimeSeries, ResampleGrid) {
  TimeSeries ts;
  ts.add(at_sec(2), 1.0);
  ts.add(at_sec(5), 2.0);
  const auto grid = ts.resample(Duration::sec(1), at_sec(6));
  ASSERT_EQ(grid.size(), 7u);  // t = 0..6
  EXPECT_DOUBLE_EQ(grid[0], 0.0);
  EXPECT_DOUBLE_EQ(grid[1], 0.0);
  EXPECT_DOUBLE_EQ(grid[2], 1.0);
  EXPECT_DOUBLE_EQ(grid[4], 1.0);
  EXPECT_DOUBLE_EQ(grid[5], 2.0);
  EXPECT_DOUBLE_EQ(grid[6], 2.0);
}

TEST(TimeSeries, SumResampled) {
  TimeSeries a;
  TimeSeries b;
  a.add(at_sec(1), 10.0);
  b.add(at_sec(2), 5.0);
  const auto total =
      sum_resampled({&a, &b}, Duration::sec(1), at_sec(3));
  ASSERT_EQ(total.size(), 4u);
  EXPECT_DOUBLE_EQ(total[0], 0.0);
  EXPECT_DOUBLE_EQ(total[1], 10.0);
  EXPECT_DOUBLE_EQ(total[2], 15.0);
  EXPECT_DOUBLE_EQ(total[3], 15.0);
}

// Property: value_at binary search agrees with a linear scan.
TEST(TimeSeries, ValueAtMatchesLinearScan) {
  TimeSeries ts;
  for (int i = 0; i < 100; ++i) {
    ts.add(at_sec(i * 3), static_cast<double>(i));
  }
  for (int probe = 0; probe < 300; probe += 7) {
    double expected = -1.0;  // "before" marker
    for (const auto& [t, v] : ts.points()) {
      if (t <= at_sec(probe)) expected = v;
    }
    if (expected < 0) expected = 0.0;
    EXPECT_DOUBLE_EQ(ts.value_at(at_sec(probe)), expected) << probe;
  }
}

}  // namespace
}  // namespace p2plab::metrics
