#include "metrics/trace.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace p2plab::metrics {
namespace {

TEST(CsvWriter, MirrorsToResultsDir) {
  char dir_template[] = "/tmp/p2plab_trace_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  setenv("P2PLAB_RESULTS_DIR", dir_template, 1);
  {
    CsvWriter csv("unit_test_table", {"a", "b"});
    csv.row(std::vector<double>{1.0, 2.5});
    csv.row(std::vector<std::string>{"x", "y"});
    csv.comment("note");
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  unsetenv("P2PLAB_RESULTS_DIR");

  std::ifstream file(std::string(dir_template) + "/unit_test_table.csv");
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str(), "a,b\n1,2.5\nx,y\n# note\n");
}

TEST(CsvWriter, NoEnvNoFile) {
  unsetenv("P2PLAB_RESULTS_DIR");
  CsvWriter csv("unmirrored", {"only"});
  csv.row(std::vector<double>{42.0});
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriter, UnwritableResultsDirFallsBackToStdout) {
  setenv("P2PLAB_RESULTS_DIR", "/nonexistent/no/such/dir", 1);
  {
    CsvWriter csv("unwritable", {"a"});
    csv.row(std::vector<double>{1.0});  // must not crash; stdout still works
    EXPECT_EQ(csv.rows_written(), 1u);
  }
  unsetenv("P2PLAB_RESULTS_DIR");
}

TEST(CsvWriter, HeaderOnlyTableStillFlushes) {
  char dir_template[] = "/tmp/p2plab_trace_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  setenv("P2PLAB_RESULTS_DIR", dir_template, 1);
  { CsvWriter csv("empty_table", {"a", "b"}); }  // zero rows
  unsetenv("P2PLAB_RESULTS_DIR");
  std::ifstream file(std::string(dir_template) + "/empty_table.csv");
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str(), "a,b\n");
}

TEST(CsvWriter, RowWidthChecked) {
  unsetenv("P2PLAB_RESULTS_DIR");
  CsvWriter csv("strict", {"a", "b"});
  EXPECT_DEATH(csv.row(std::vector<double>{1.0}), "width");
}

TEST(CsvWriter, NumbersFormattedCompactly) {
  char dir_template[] = "/tmp/p2plab_trace_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  setenv("P2PLAB_RESULTS_DIR", dir_template, 1);
  {
    CsvWriter csv("fmt", {"v"});
    csv.row(std::vector<double>{100.0});
    csv.row(std::vector<double>{0.125});
    csv.row(std::vector<double>{1e9});
  }
  unsetenv("P2PLAB_RESULTS_DIR");
  std::ifstream file(std::string(dir_template) + "/fmt.csv");
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str(), "v\n100\n0.125\n1000000000\n");
}

}  // namespace
}  // namespace p2plab::metrics
