#!/usr/bin/env bash
# Hot-path regression gate: run bench/hotpath_alloc and compare its
# BENCH_hotpath.json against the committed baseline.
#
# Two kinds of checks, with different strictness:
#   * throughput (events/sec, packets/sec): machine-dependent, so a run
#     only fails when it regresses more than THRESHOLD_PCT below baseline
#     (default 20%; CI runners with different silicon can widen it via
#     P2PLAB_BENCH_GATE_THRESHOLD_PCT).
#   * allocation discipline (allocs/event, InlineCallback heap fallbacks):
#     machine-independent, checked against absolute bounds — this is the
#     part that catches "someone grew a closure past the inline budget"
#     regardless of how fast the runner is.
#
# usage: scripts/bench_gate.sh <path-to-hotpath_alloc> [baseline-json]
#        scripts/bench_gate.sh --scaling <bench-json>...
# env:   P2PLAB_BENCH_GATE_THRESHOLD_PCT  throughput slack  (default 20)
#        P2PLAB_BENCH_GATE_MAX_ALLOCS     max packet allocs/event (default 0.1)
#        P2PLAB_BENCH_GATE_MAX_FALLBACKS  max heap fallbacks (default 0)
#        P2PLAB_RESULTS_DIR               where BENCH_hotpath.json lands
#                                         (default: a temp dir)
#
# --scaling mode: validate BENCH_*.json files as parallel-scaling
# datapoints. A shards>1 run with degraded_parallelism set (fewer online
# cores than shards — the workers time-sliced one core) is REFUSED with
# exit 2: its wall-clock says nothing about scaling, and plotting it as if
# it did is how wrong speedup graphs get published.
set -euo pipefail

if [ "${1:-}" = "--scaling" ]; then
  shift
  [ "$#" -ge 1 ] || { echo "usage: bench_gate.sh --scaling <bench-json>..."; exit 2; }
  field() {
    awk -v key="\"$2\":" 'BEGIN { RS="," } $0 ~ key { gsub(/[^0-9.eE+-]/, "", $NF); print $NF }' "$1"
  }
  for json in "$@"; do
    [ -s "$json" ] || { echo "REFUSED: $json missing or empty"; exit 2; }
    # A scaling datapoint must carry the standard schema; a file without
    # these fields is some other JSON and must not pass silently.
    for key in shards cores degraded_parallelism events_per_second; do
      if [ -z "$(field "$json" "$key")" ]; then
        echo "REFUSED: $json has no \"$key\" field — not a standard" \
             "BENCH json (see core/bench_report); regenerate it"
        exit 2
      fi
    done
    shards=$(field "$json" shards)
    degraded=$(field "$json" degraded_parallelism)
    if [ "${shards%%.*}" -gt 1 ] && [ "${degraded%%.*}" -eq 1 ] 2>/dev/null; then
      echo "REFUSED: $json ran shards=$shards with degraded_parallelism=1" \
           "(cores=$(field "$json" cores)) — not a scaling datapoint;" \
           "rerun on a machine with >= $shards online cores"
      exit 2
    fi
    echo "ok:   $json (shards=$shards, cores=$(field "$json" cores)) is a valid scaling datapoint"
  done
  exit 0
fi

BENCH="${1:?usage: bench_gate.sh <path-to-hotpath_alloc> [baseline-json]}"
BASELINE="${2:-$(dirname "$0")/../bench/BASELINE_hotpath.json}"
THRESHOLD_PCT="${P2PLAB_BENCH_GATE_THRESHOLD_PCT:-20}"
MAX_ALLOCS="${P2PLAB_BENCH_GATE_MAX_ALLOCS:-0.1}"
MAX_FALLBACKS="${P2PLAB_BENCH_GATE_MAX_FALLBACKS:-0}"
RESULTS_DIR="${P2PLAB_RESULTS_DIR:-$(mktemp -d)}"

[ -f "$BASELINE" ] || { echo "FAIL: baseline '$BASELINE' not found"; exit 1; }

echo "=== bench gate: $BENCH (threshold ${THRESHOLD_PCT}%) ==="
P2PLAB_RESULTS_DIR="$RESULTS_DIR" "$BENCH"
RESULT="$RESULTS_DIR/BENCH_hotpath.json"
[ -s "$RESULT" ] || { echo "FAIL: $RESULT was not written"; exit 1; }

# The JSON is flat ("key": number pairs), so awk is all the parsing needed.
field() {
  awk -v key="\"$2\":" 'BEGIN { RS="," } $0 ~ key { gsub(/[^0-9.eE+-]/, "", $NF); print $NF }' "$1"
}

status=0
check_throughput() {  # name
  local now base floor
  now=$(field "$RESULT" "$1")
  base=$(field "$BASELINE" "$1")
  floor=$(awk -v b="$base" -v t="$THRESHOLD_PCT" 'BEGIN { printf "%.0f", b * (100 - t) / 100 }')
  if awk -v n="$now" -v f="$floor" 'BEGIN { exit !(n < f) }'; then
    echo "FAIL: $1 = $now, below floor $floor (baseline $base - ${THRESHOLD_PCT}%)"
    status=1
  else
    echo "ok:   $1 = $now (baseline $base, floor $floor)"
  fi
}
check_max() {  # name bound
  local now
  now=$(field "$RESULT" "$1")
  if awk -v n="$now" -v m="$2" 'BEGIN { exit !(n > m) }'; then
    echo "FAIL: $1 = $now, above bound $2"
    status=1
  else
    echo "ok:   $1 = $now (bound $2)"
  fi
}

check_throughput events_per_second
check_throughput packets_per_second
check_max event_allocs_per_event "$MAX_ALLOCS"
check_max packet_allocs_per_event "$MAX_ALLOCS"
check_max callback_heap_fallbacks "$MAX_FALLBACKS"

exit $status
