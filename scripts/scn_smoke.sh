#!/usr/bin/env bash
# Smoke-run every shipped scenario through p2plab_run, on the classic
# engine (shards=0) and the parallel engine (shards=2). A run fails the
# matrix if it exits nonzero or if any output it declares (per
# --print-outputs, which honors the same --set overrides) is missing or
# empty. Client counts are overridden downward so the whole matrix stays
# within a CI minute; the code paths exercised are the full ones.
#
# usage: scripts/scn_smoke.sh <path-to-p2plab_run> [scenarios-dir]
set -euo pipefail

RUN="${1:?usage: scn_smoke.sh <path-to-p2plab_run> [scenarios-dir]}"
SCN_DIR="${2:-scenarios}"

shopt -s nullglob
scn_files=("$SCN_DIR"/*.scn)
if [ "${#scn_files[@]}" -eq 0 ]; then
  echo "FAIL: no .scn files in '$SCN_DIR'"
  exit 1
fi

overrides_for() {
  case "$1" in
    fig6) echo "" ;;  # the rule sweep is already CI-sized
    accuracy) echo "" ;;  # validate workload has no clients key; CI-sized as shipped
    gossip) echo "" ;;  # membership run is already tiny; no clients key either
    fig8) echo "--set workload.clients=16" ;;
    fig10) echo "--set workload.clients=64" ;;
    churn) echo "--set workload.clients=24" ;;
    flashcrowd) echo "--set workload.clients=32" ;;
    *) echo "--set workload.clients=16" ;;
  esac
}

status=0
for scn in "${scn_files[@]}"; do
  base=$(basename "$scn" .scn)
  read -ra extra <<< "$(overrides_for "$base")"
  for shards in 0 2; do
    out=$(mktemp -d)
    echo "=== $base shards=$shards ==="
    if ! P2PLAB_RESULTS_DIR="$out" \
        "$RUN" "$scn" --set engine.shards="$shards" ${extra[@]+"${extra[@]}"} \
        > "$out/stdout.log" 2>&1; then
      echo "FAIL: $base shards=$shards exited nonzero"
      tail -20 "$out/stdout.log"
      status=1
      continue
    fi
    while IFS= read -r f; do
      if [ ! -s "$out/$f" ]; then
        echo "FAIL: $base shards=$shards did not write declared output $f"
        status=1
      fi
    done < <("$RUN" "$scn" --set engine.shards="$shards" \
             ${extra[@]+"${extra[@]}"} --print-outputs)
  done
done

# One profiled pass: the profiler must run, declare and write its Perfetto
# timeline (profile.json) alongside the scenario's usual outputs. The flag
# comes from the CLI so the shipped .scn files stay untouched.
prof_scn="$SCN_DIR/fig8.scn"
if [ -f "$prof_scn" ]; then
  out=$(mktemp -d)
  echo "=== fig8 shards=2 --profile ==="
  if ! P2PLAB_RESULTS_DIR="$out" \
      "$RUN" "$prof_scn" --profile --set engine.shards=2 \
      --set workload.clients=16 > "$out/stdout.log" 2>&1; then
    echo "FAIL: profiled fig8 run exited nonzero"
    tail -20 "$out/stdout.log"
    status=1
  else
    while IFS= read -r f; do
      if [ ! -s "$out/$f" ]; then
        echo "FAIL: profiled fig8 did not write declared output $f"
        status=1
      fi
    done < <("$RUN" "$prof_scn" --profile --set engine.shards=2 \
             --set workload.clients=16 --print-outputs)
    if ! "$RUN" "$prof_scn" --profile --set engine.shards=2 \
        --set workload.clients=16 --print-outputs | grep -q '^profile\.json$'; then
      echo "FAIL: --print-outputs with --profile does not list profile.json"
      status=1
    fi
  fi
fi
exit $status
